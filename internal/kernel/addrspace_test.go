package kernel

import (
	"errors"
	"testing"
	"time"

	"histar/internal/label"
)

// setupAS creates an address space for the boot thread with one read-write
// mapping of a fresh segment at va 0x10000, and switches the thread to it.
func setupAS(t *testing.T, k *Kernel, tc *ThreadCall, segLabel label.Label, flags MapFlags) (asID, segID ID) {
	t.Helper()
	root := k.RootContainer()
	seg, err := tc.SegmentCreate(root, segLabel, "mapped seg", 2*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	as, err := tc.AddressSpaceCreate(root, label.New(label.L1), "as")
	if err != nil {
		t.Fatal(err)
	}
	err = tc.AddressSpaceSet(CEnt{root, as}, []Mapping{{
		VA:     0x10000,
		Seg:    CEnt{root, seg},
		Offset: 0,
		NPages: 2,
		Flags:  flags,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.SelfSetAddressSpace(CEnt{root, as}); err != nil {
		t.Fatal(err)
	}
	return as, seg
}

func TestMemReadWriteThroughMapping(t *testing.T) {
	k, tc := boot(t)
	_, seg := setupAS(t, k, tc, label.New(label.L1), MapRead|MapWrite)
	root := k.RootContainer()

	if err := tc.MemWrite(0x10000, []byte("mapped data")); err != nil {
		t.Fatal(err)
	}
	got, err := tc.MemRead(0x10000, 11)
	if err != nil || string(got) != "mapped data" {
		t.Fatalf("MemRead = %q, %v", got, err)
	}
	// The write went to the backing segment.
	direct, err := tc.SegmentRead(CEnt{root, seg}, 0, 11)
	if err != nil || string(direct) != "mapped data" {
		t.Errorf("segment contents = %q, %v", direct, err)
	}
	// Accessing an unmapped address faults.
	if _, err := tc.MemRead(0x90000, 4); !errors.Is(err, ErrNoMapping) {
		t.Errorf("unmapped read: err=%v", err)
	}
}

func TestMemWriteRequiresWriteFlag(t *testing.T) {
	k, tc := boot(t)
	setupAS(t, k, tc, label.New(label.L1), MapRead)
	_ = k
	if err := tc.MemWrite(0x10000, []byte("x")); !errors.Is(err, ErrAccess) {
		t.Errorf("write through read-only mapping: err=%v", err)
	}
	if _, err := tc.MemRead(0x10000, 4); err != nil {
		t.Errorf("read through read-only mapping should work: %v", err)
	}
}

func TestPageFaultLabelChecks(t *testing.T) {
	k, tc := boot(t)
	root := k.RootContainer()
	c, _ := tc.CategoryCreate()

	// Map a c0-protected segment read-write into an untainted thread's AS.
	seg, _ := tc.SegmentCreate(root, label.New(label.L1, label.P(c, label.L0)), "protected", PageSize)
	as, _ := tc.AddressSpaceCreate(root, label.New(label.L1), "as2")
	_ = tc.AddressSpaceSet(CEnt{root, as}, []Mapping{{
		VA: 0x20000, Seg: CEnt{root, seg}, NPages: 1, Flags: MapRead | MapWrite,
	}})

	tid, _ := tc.ThreadCreate(root, ThreadSpec{
		Label:        label.New(label.L1),
		Clearance:    label.New(label.L2),
		AddressSpace: CEnt{root, as},
	})
	tc2, _ := k.ThreadCall(tid)

	// Reads are fine (c0 restricts writes only)...
	if _, err := tc2.MemRead(0x20000, 4); err != nil {
		t.Errorf("read of c0 segment: %v", err)
	}
	// ...but writes fail the LT ⊑ LO page-fault check even though the
	// mapping has the write flag.
	if err := tc2.MemWrite(0x20000, []byte("no")); !errors.Is(err, ErrLabel) {
		t.Errorf("write to c0 segment: err=%v, want ErrLabel", err)
	}
	// The owner of c can write through the same mapping.
	if err := tc.SelfSetAddressSpace(CEnt{root, as}); err != nil {
		t.Fatal(err)
	}
	if err := tc.MemWrite(0x20000, []byte("yes")); err != nil {
		t.Errorf("owner write: %v", err)
	}
}

func TestFaultHandlerInvoked(t *testing.T) {
	k, tc := boot(t)
	as, _ := setupAS(t, k, tc, label.New(label.L1), MapRead|MapWrite)
	root := k.RootContainer()
	var faults []uint64
	err := tc.SetFaultHandler(CEnt{root, as}, func(va uint64, write bool, err error) {
		faults = append(faults, va)
	})
	if err != nil {
		t.Fatal(err)
	}
	tc.MemRead(0xdead000, 4)
	if len(faults) != 1 || faults[0] != 0xdead000 {
		t.Errorf("fault handler calls = %v", faults)
	}
}

func TestThreadLocalSegment(t *testing.T) {
	k, tc := boot(t)
	// Thread-local reads/writes work regardless of taint.
	if err := tc.LocalSegmentWrite(0, []byte("scratch")); err != nil {
		t.Fatal(err)
	}
	got, err := tc.LocalSegmentRead(0, 7)
	if err != nil || string(got) != "scratch" {
		t.Fatalf("local segment = %q, %v", got, err)
	}
	// Mapping the local segment into the AS with the MapThreadLocal flag.
	root := k.RootContainer()
	as, err := tc.AddressSpaceCreate(root, label.New(label.L1), "tls-as")
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.AddressSpaceSet(CEnt{root, as}, []Mapping{{
		VA: 0x7000000, NPages: 1, Flags: MapRead | MapWrite | MapThreadLocal,
	}}); err != nil {
		t.Fatal(err)
	}
	if err := tc.SelfSetAddressSpace(CEnt{root, as}); err != nil {
		t.Fatal(err)
	}
	if err := tc.MemWrite(0x7000000, []byte("tls!")); err != nil {
		t.Fatalf("mem write to TLS mapping: %v", err)
	}
	got, _ = tc.LocalSegmentRead(0, 4)
	if string(got) != "tls!" {
		t.Errorf("TLS contents = %q", got)
	}
	// Taint the thread heavily; the local segment must remain writable.
	lbl, _ := tc.SelfLabel()
	if err := tc.SelfSetLabel(lbl.With(label.Category(5150), label.L2)); err != nil {
		t.Fatal(err)
	}
	if err := tc.LocalSegmentWrite(8, []byte("still works")); err != nil {
		t.Errorf("tainted thread must write its local segment: %v", err)
	}
	// Bounds are enforced.
	if err := tc.LocalSegmentWrite(4090, []byte("too long......")); !errors.Is(err, ErrInvalid) {
		t.Errorf("out-of-bounds local write: err=%v", err)
	}
}

func TestAddressSpaceAddRemoveMapping(t *testing.T) {
	k, tc := boot(t)
	root := k.RootContainer()
	seg, _ := tc.SegmentCreate(root, label.New(label.L1), "s", PageSize)
	as, _ := tc.AddressSpaceCreate(root, label.New(label.L1), "as")
	ce := CEnt{root, as}
	if err := tc.AddressSpaceAddMapping(ce, Mapping{VA: 0x1000, Seg: CEnt{root, seg}, NPages: 1, Flags: MapRead}); err != nil {
		t.Fatal(err)
	}
	maps, _ := tc.AddressSpaceGet(ce)
	if len(maps) != 1 {
		t.Fatalf("mappings = %d", len(maps))
	}
	// Unaligned VA rejected.
	if err := tc.AddressSpaceAddMapping(ce, Mapping{VA: 0x1001, Seg: CEnt{root, seg}, NPages: 1}); !errors.Is(err, ErrInvalid) {
		t.Errorf("unaligned mapping: err=%v", err)
	}
	if err := tc.AddressSpaceRemoveMapping(ce, 0x1000); err != nil {
		t.Fatal(err)
	}
	if err := tc.AddressSpaceRemoveMapping(ce, 0x1000); !errors.Is(err, ErrNoMapping) {
		t.Errorf("removing missing mapping: err=%v", err)
	}
}

func TestAlerts(t *testing.T) {
	k, tc := boot(t)
	root := k.RootContainer()
	// Create a target thread with an address space the sender can write.
	as, _ := tc.AddressSpaceCreate(root, label.New(label.L1), "victim as")
	tid, _ := tc.ThreadCreate(root, ThreadSpec{
		Label:        label.New(label.L1),
		Clearance:    label.New(label.L2),
		AddressSpace: CEnt{root, as},
	})
	victim, _ := k.ThreadCall(tid)

	if err := tc.ThreadAlert(CEnt{root, tid}, 15); err != nil {
		t.Fatal(err)
	}
	code, ok, err := victim.AlertPoll()
	if err != nil || !ok || code != 15 {
		t.Fatalf("AlertPoll = %d, %v, %v", code, ok, err)
	}
	// Blocking wait.
	done := make(chan uint64, 1)
	go func() {
		c, err := victim.AlertWait()
		if err == nil {
			done <- c
		}
	}()
	if err := tc.ThreadAlert(CEnt{root, tid}, 9); err != nil {
		t.Fatal(err)
	}
	if got := <-done; got != 9 {
		t.Errorf("AlertWait = %d", got)
	}
}

func TestAlertRequiresAddressSpaceWritePermission(t *testing.T) {
	k, tc := boot(t)
	root := k.RootContainer()
	pw, _ := tc.CategoryCreateNamed("pw")
	// The victim's address space is protected by pw 0, like a HiStar
	// process's objects; only pw owners can signal it.
	as, _ := tc.AddressSpaceCreate(root, label.New(label.L1, label.P(pw, label.L0)), "private as")
	tid, _ := tc.ThreadCreate(root, ThreadSpec{
		Label:        label.New(label.L1, label.P(pw, label.Star)),
		Clearance:    label.New(label.L2, label.P(pw, label.L3)),
		AddressSpace: CEnt{root, as},
	})

	// An unrelated thread cannot alert it.
	outsiderID, _ := tc.ThreadCreate(root, ThreadSpec{Label: label.New(label.L1), Clearance: label.New(label.L2)})
	outsider, _ := k.ThreadCall(outsiderID)
	if err := outsider.ThreadAlert(CEnt{root, tid}, 9); !errors.Is(err, ErrLabel) {
		t.Errorf("outsider alert should fail: err=%v", err)
	}
	// The pw owner can.
	if err := tc.ThreadAlert(CEnt{root, tid}, 9); err != nil {
		t.Errorf("owner alert failed: %v", err)
	}
}

func TestFutexWaitWake(t *testing.T) {
	k, tc := boot(t)
	root := k.RootContainer()
	seg, _ := tc.SegmentCreate(root, label.New(label.L1), "futex word", 16)
	ce := CEnt{root, seg}

	// Wait on a value that no longer matches returns immediately.
	if err := tc.FutexWait(ce, 0, 42); err != nil {
		t.Fatalf("non-matching futex wait should return immediately: %v", err)
	}

	// A second thread blocks until woken.
	tid, _ := tc.ThreadCreate(root, ThreadSpec{Label: label.New(label.L1), Clearance: label.New(label.L2)})
	waiter, _ := k.ThreadCall(tid)
	done := make(chan struct{})
	go func() {
		waiter.FutexWait(ce, 0, 0)
		close(done)
	}()
	// Give the waiter a moment to block, then wake it.
	for i := 0; ; i++ {
		n, err := tc.FutexWake(ce, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if n == 1 {
			break
		}
		if i > 5000 {
			t.Fatal("waiter never blocked")
		}
		time.Sleep(time.Millisecond)
	}
	<-done

	// FutexWake on a segment the thread cannot modify is rejected.
	c, _ := tc.CategoryCreate()
	sealed, _ := tc.SegmentCreate(root, label.New(label.L1, label.P(c, label.L0)), "sealed", 16)
	outsiderID, _ := tc.ThreadCreate(root, ThreadSpec{Label: label.New(label.L1), Clearance: label.New(label.L2)})
	outsider, _ := k.ThreadCall(outsiderID)
	if _, err := outsider.FutexWake(CEnt{root, sealed}, 0, 1); !errors.Is(err, ErrLabel) {
		t.Errorf("futex wake without write permission: err=%v", err)
	}
}

func TestDeviceLabelDiscipline(t *testing.T) {
	k, tc := boot(t)
	root := k.RootContainer()
	nr, _ := tc.CategoryCreateNamed("nr")
	nw, _ := tc.CategoryCreateNamed("nw")
	i, _ := tc.CategoryCreateNamed("i")

	devLabel := label.New(label.L1,
		label.P(nr, label.L3), label.P(nw, label.L0), label.P(i, label.L2))
	dev, err := k.DeviceCreate(root, devLabel, [6]byte{0xde, 0xad, 0xbe, 0xef, 0, 1}, "eepro100")
	if err != nil {
		t.Fatal(err)
	}
	ce := CEnt{root, dev}

	var transmitted [][]byte
	k.SetDeviceTransmitHook(dev, func(pkt []byte) { transmitted = append(transmitted, pkt) })

	// netd (owning nr and nw, tainted i2) can use the device.
	netdID, _ := tc.ThreadCreate(root, ThreadSpec{
		Label: label.New(label.L1,
			label.P(nr, label.Star), label.P(nw, label.Star), label.P(i, label.L2)),
		Clearance: label.New(label.L2,
			label.P(nr, label.L3), label.P(nw, label.L3), label.P(i, label.L2)),
	})
	netd, _ := k.ThreadCall(netdID)
	if _, err := netd.DeviceMAC(ce); err != nil {
		t.Errorf("netd MAC read: %v", err)
	}
	if err := netd.DeviceTransmit(ce, []byte("frame 1")); err != nil {
		t.Errorf("netd transmit: %v", err)
	}
	if len(transmitted) != 1 {
		t.Errorf("transmit hook calls = %d", len(transmitted))
	}
	// Inbound packets can be received by netd.
	k.DeviceInject(dev, []byte("inbound"))
	pkt, ok, err := netd.DeviceReceive(ce)
	if err != nil || !ok || string(pkt) != "inbound" {
		t.Errorf("receive = %q, %v, %v", pkt, ok, err)
	}

	// A thread tainted in some other secrecy category v3 cannot transmit:
	// its taint does not flow to the device label.
	v, _ := tc.CategoryCreate()
	taintedID, _ := tc.ThreadCreate(root, ThreadSpec{
		Label: label.New(label.L1,
			label.P(nr, label.Star), label.P(nw, label.Star),
			label.P(i, label.L2), label.P(v, label.L3)),
		Clearance: label.New(label.L2,
			label.P(nr, label.L3), label.P(nw, label.L3),
			label.P(i, label.L2), label.P(v, label.L3)),
	})
	tainted, _ := k.ThreadCall(taintedID)
	if err := tainted.DeviceTransmit(ce, []byte("leak")); !errors.Is(err, ErrLabel) {
		t.Errorf("tainted transmit must fail: err=%v", err)
	}
	// An ordinary thread (no nr/nw ownership) can neither read nor write the
	// device.
	plainID, _ := tc.ThreadCreate(root, ThreadSpec{Label: label.New(label.L1), Clearance: label.New(label.L2)})
	plain, _ := k.ThreadCall(plainID)
	if _, err := plain.DeviceMAC(ce); !errors.Is(err, ErrLabel) {
		t.Errorf("plain thread MAC read must fail: err=%v", err)
	}
	if err := plain.DeviceTransmit(ce, []byte("x")); !errors.Is(err, ErrLabel) {
		t.Errorf("plain thread transmit must fail: err=%v", err)
	}
}

func TestDeviceWaitBlocksUntilInject(t *testing.T) {
	k, tc := boot(t)
	root := k.RootContainer()
	dev, _ := k.DeviceCreate(root, label.New(label.L1), [6]byte{1}, "nic")
	ce := CEnt{root, dev}
	done := make(chan []byte, 1)
	go func() {
		if err := tc.DeviceWait(ce); err != nil {
			done <- nil
			return
		}
		pkt, _, _ := tc.DeviceReceive(ce)
		done <- pkt
	}()
	k.DeviceInject(dev, []byte("wake up"))
	if got := <-done; string(got) != "wake up" {
		t.Errorf("DeviceWait/Receive = %q", got)
	}
}
