package kernel

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"histar/internal/label"
)

// Ring tests: a randomized property test against a sequential reference
// model (including chain-flag skip semantics and error propagation), a
// deterministic chain-semantics test, sync-group dispatch through a fake
// Syncer, stats accounting, and a -race stress test of many threads
// submitting overlapping-object batches.

// ringTestEnv is a booted kernel with a few segments to batch against.
type ringTestEnv struct {
	k    *Kernel
	tc   *ThreadCall
	segs []CEnt
}

func newRingEnv(t *testing.T, nSegs, segSize int) *ringTestEnv {
	t.Helper()
	k, tc := boot(t)
	env := &ringTestEnv{k: k, tc: tc}
	for i := 0; i < nSegs; i++ {
		id, err := tc.SegmentCreate(k.RootContainer(), label.New(label.L1), fmt.Sprintf("ring seg %d", i), segSize)
		if err != nil {
			t.Fatalf("SegmentCreate: %v", err)
		}
		env.segs = append(env.segs, CEnt{Container: k.RootContainer(), Object: id})
	}
	return env
}

// recordingSyncer implements Syncer, recording each dispatched group and
// failing the ids in poison.
type recordingSyncer struct {
	mu     sync.Mutex
	groups [][]uint64
	poison map[uint64]error
}

func (rs *recordingSyncer) SyncObjects(ids []uint64) []error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.groups = append(rs.groups, append([]uint64(nil), ids...))
	errs := make([]error, len(ids))
	for i, id := range ids {
		errs[i] = rs.poison[id]
	}
	return errs
}

// modelExec executes a batch sequentially, in submission order, against
// plain byte slices — the reference semantics the ring must match.  Because
// each entry touches only its own target and the ring preserves per-object
// and intra-chain submission order, reordering across objects is
// unobservable and sequential execution is the specification.
func modelExec(entries []RingEntry, segs map[ID][]byte, quota map[ID]uint64, poison map[uint64]error) ([]RingCompletion, map[ID][]byte) {
	state := make(map[ID][]byte, len(segs))
	for id, b := range segs {
		state[id] = append([]byte(nil), b...)
	}
	comps := make([]RingCompletion, len(entries))
	failed := false // current chain failed
	for i, e := range entries {
		comps[i].Index = i
		if i > 0 && e.Chain {
			if failed {
				comps[i].Err = ErrSkipped
				continue
			}
		} else {
			failed = false
		}
		data, ok := state[e.Seg.Object]
		var err error
		switch {
		case !ok:
			err = ErrNoSuchObject
		default:
			switch e.Op {
			case OpSegmentRead:
				if e.Off < 0 || e.Len < 0 || e.Off > len(data) {
					err = ErrInvalid
					break
				}
				end := len(data)
				if e.Len < end-e.Off {
					end = e.Off + e.Len
				}
				comps[i].Val = append([]byte(nil), data[e.Off:end]...)
				comps[i].N = len(comps[i].Val)
			case OpSegmentLen:
				comps[i].N = len(data)
			case OpSegmentWrite:
				if e.Off < 0 {
					err = ErrInvalid
					break
				}
				end := e.Off + len(e.Data)
				if uint64(end)+128 > quota[e.Seg.Object] && end > len(data) {
					err = ErrQuota
					break
				}
				if end > len(data) {
					grown := make([]byte, end)
					copy(grown, data)
					data = grown
				}
				copy(data[e.Off:], e.Data)
				state[e.Seg.Object] = data
				comps[i].N = len(e.Data)
			case OpSegmentResize:
				if e.Len < 0 {
					err = ErrInvalid
					break
				}
				if uint64(e.Len)+128 > quota[e.Seg.Object] {
					err = ErrQuota
					break
				}
				if e.Len <= len(data) {
					state[e.Seg.Object] = data[:e.Len]
				} else {
					grown := make([]byte, e.Len)
					copy(grown, data)
					state[e.Seg.Object] = grown
				}
			case OpSync:
				err = poison[uint64(e.Seg.Object)]
			}
		}
		if err != nil {
			comps[i].Err = err
			failed = true
		}
	}
	return comps, state
}

// TestRingPropertyVsSequential drives random batches through the ring and
// checks every completion and every final segment state against the
// sequential reference model.
func TestRingPropertyVsSequential(t *testing.T) {
	const nSegs, segSize = 4, 256
	env := newRingEnv(t, nSegs, segSize)
	rng := rand.New(rand.NewSource(42))

	poisonID := uint64(env.segs[1].Object)
	poisonErr := errors.New("poisoned sync")
	rs := &recordingSyncer{poison: map[uint64]error{poisonID: poisonErr}}
	ring := env.tc.NewRing()
	ring.SetSyncer(rs)

	quota := make(map[ID]uint64)
	for _, ce := range env.segs {
		quota[ce.Object] = uint64(segSize) + segmentSlack
	}

	for round := 0; round < 200; round++ {
		// Current kernel state becomes the model's initial state.
		segs := make(map[ID][]byte, nSegs)
		for _, ce := range env.segs {
			buf, err := env.tc.SegmentRead(ce, 0, 1<<20)
			if err != nil {
				t.Fatalf("round %d: snapshot read: %v", round, err)
			}
			segs[ce.Object] = buf
		}

		n := 1 + rng.Intn(12)
		entries := make([]RingEntry, n)
		for i := range entries {
			ce := env.segs[rng.Intn(nSegs)]
			// The sequential model describes exactly the ring's ordering
			// guarantee (see ring.go): intra-chain order plus submission
			// order among same-keyed chains.  So generated chains stay on
			// one object (a cross-object chain's later entries may legally
			// reorder against other chains) and never continue past an
			// OpSync (those entries execute in a later pass).  Cross-object
			// and chain-after-sync semantics are pinned down by
			// TestRingChainSkip and TestRingSyncGroups instead.
			chain := i > 0 && entries[i-1].Op != OpSync && rng.Intn(3) == 0
			if chain {
				ce = entries[i-1].Seg
			}
			e := RingEntry{Seg: ce, Chain: chain}
			switch rng.Intn(6) {
			case 0:
				e.Op = OpSegmentRead
				e.Off, e.Len = rng.Intn(segSize), rng.Intn(2*segSize)
			case 1:
				e.Op = OpSegmentLen
			case 2:
				e.Op = OpSegmentWrite
				e.Off = rng.Intn(segSize)
				e.Data = bytes.Repeat([]byte{byte(round), byte(i)}, 1+rng.Intn(16))
			case 3:
				e.Op = OpSegmentResize
				e.Len = rng.Intn(2 * segSize)
			case 4:
				e.Op = OpSync
			case 5:
				// Error injector: invalid offset fails the entry (and, via
				// chains, skips dependents).
				e.Op = OpSegmentRead
				e.Off = -1
			}
			entries[i] = e
		}

		wantComps, wantState := modelExec(entries, segs, quota, rs.poison)
		ring.Submit(entries...)
		gotComps, err := ring.Wait(n)
		if err != nil {
			t.Fatalf("round %d: Wait: %v", round, err)
		}
		if len(gotComps) != len(wantComps) {
			t.Fatalf("round %d: %d completions, want %d", round, len(gotComps), len(wantComps))
		}
		for i := range gotComps {
			got, want := gotComps[i], wantComps[i]
			if got.Index != i {
				t.Fatalf("round %d entry %d: completion index %d", round, i, got.Index)
			}
			if !errors.Is(got.Err, want.Err) {
				t.Fatalf("round %d entry %d (%v): err=%v, model err=%v", round, i, entries[i].Op, got.Err, want.Err)
			}
			if want.Err == nil && got.Err == nil {
				if !bytes.Equal(got.Val, want.Val) || got.N != want.N {
					t.Fatalf("round %d entry %d (%v): result N=%d Val=%q, model N=%d Val=%q",
						round, i, entries[i].Op, got.N, got.Val, want.N, want.Val)
				}
			}
		}
		for _, ce := range env.segs {
			buf, err := env.tc.SegmentRead(ce, 0, 1<<20)
			if err != nil {
				t.Fatalf("round %d: final read: %v", round, err)
			}
			if !bytes.Equal(buf, wantState[ce.Object]) {
				t.Fatalf("round %d: segment %d state diverged from model", round, ce.Object)
			}
		}
	}
}

// TestRingChainSkip pins down chain semantics: an error skips every chained
// dependent (cascading), and the next unchained entry starts fresh.
func TestRingChainSkip(t *testing.T) {
	env := newRingEnv(t, 1, 64)
	seg := env.segs[0]
	ring := env.tc.NewRing()
	ring.Submit(
		RingEntry{Op: OpSegmentWrite, Seg: seg, Off: 0, Data: []byte("ab")},
		RingEntry{Op: OpSegmentRead, Seg: seg, Off: -1, Chain: true}, // fails: ErrInvalid
		RingEntry{Op: OpSegmentRead, Seg: seg, Off: 0, Len: 2, Chain: true},
		RingEntry{Op: OpSegmentLen, Seg: seg, Chain: true},
		RingEntry{Op: OpSegmentRead, Seg: seg, Off: 0, Len: 2}, // unchained: runs
	)
	comps, err := ring.Wait(5)
	if err != nil {
		t.Fatal(err)
	}
	if comps[0].Err != nil {
		t.Errorf("entry 0: %v", comps[0].Err)
	}
	if !errors.Is(comps[1].Err, ErrInvalid) {
		t.Errorf("entry 1 err = %v, want ErrInvalid", comps[1].Err)
	}
	for i := 2; i <= 3; i++ {
		if !errors.Is(comps[i].Err, ErrSkipped) {
			t.Errorf("entry %d err = %v, want ErrSkipped", i, comps[i].Err)
		}
	}
	if comps[4].Err != nil || string(comps[4].Val) != "ab" {
		t.Errorf("entry 4 = (%q, %v), want (\"ab\", nil)", comps[4].Val, comps[4].Err)
	}
}

// TestRingSyncGroups checks that every OpSync runnable in one pass reaches
// the Syncer as a single group, and that entries chained after a failed sync
// are skipped.
func TestRingSyncGroups(t *testing.T) {
	env := newRingEnv(t, 3, 64)
	rs := &recordingSyncer{poison: map[uint64]error{uint64(env.segs[2].Object): errors.New("bad disk")}}
	ring := env.tc.NewRing()
	ring.SetSyncer(rs)
	ring.Submit(
		RingEntry{Op: OpSync, Seg: env.segs[0]},
		RingEntry{Op: OpSync, Seg: env.segs[1]},
		RingEntry{Op: OpSync, Seg: env.segs[2]},
		RingEntry{Op: OpSegmentLen, Seg: env.segs[2], Chain: true}, // skipped: its sync failed
	)
	comps, err := ring.Wait(4)
	if err != nil {
		t.Fatal(err)
	}
	if comps[0].Err != nil || comps[1].Err != nil {
		t.Errorf("healthy syncs failed: %v, %v", comps[0].Err, comps[1].Err)
	}
	if comps[2].Err == nil || !errors.Is(comps[3].Err, ErrSkipped) {
		t.Errorf("poisoned sync chain = (%v, %v), want (error, ErrSkipped)", comps[2].Err, comps[3].Err)
	}
	if len(rs.groups) != 1 || len(rs.groups[0]) != 3 {
		t.Fatalf("syncer saw groups %v, want one group of 3", rs.groups)
	}
	st := env.k.RingStats()
	if st.SyncGroups != 1 || st.SyncEntries != 3 {
		t.Errorf("RingStats sync groups/entries = %d/%d, want 1/3", st.SyncGroups, st.SyncEntries)
	}
}

// TestRingCountsAndCoalescing checks the accounting satellite: one
// ring_submit per Wait, per-entry counts in the normal per-syscall counters,
// and a same-target batch coalescing to a single lock run.
func TestRingCountsAndCoalescing(t *testing.T) {
	env := newRingEnv(t, 2, 64)
	env.k.ResetSyscallCounts()
	env.k.ResetRingStats()
	ring := env.tc.NewRing()
	ring.Submit(
		RingEntry{Op: OpSegmentRead, Seg: env.segs[0], Off: 0, Len: 8},
		RingEntry{Op: OpSegmentLen, Seg: env.segs[0]},
		RingEntry{Op: OpSegmentWrite, Seg: env.segs[0], Off: 0, Data: []byte("x")},
		RingEntry{Op: OpSegmentRead, Seg: env.segs[1], Off: 0, Len: 8},
	)
	comps, err := ring.Wait(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range comps {
		if comps[i].Err != nil {
			t.Fatalf("entry %d: %v", i, comps[i].Err)
		}
	}
	counts := env.k.SyscallCounts()
	if counts["ring_submit"] != 1 {
		t.Errorf("ring_submit = %d, want 1", counts["ring_submit"])
	}
	if counts["segment_read"] != 2 || counts["segment_len"] != 1 || counts["segment_write"] != 1 {
		t.Errorf("per-entry counts = %v", counts)
	}
	st := env.k.RingStats()
	if st.Waits != 1 || st.Entries != 4 {
		t.Errorf("RingStats waits/entries = %d/%d, want 1/4", st.Waits, st.Entries)
	}
	// Three same-target entries + one other: two lock runs, two coalesced.
	if st.Runs != 2 || st.Coalesced != 2 {
		t.Errorf("RingStats runs/coalesced = %d/%d, want 2/2", st.Runs, st.Coalesced)
	}
}

// TestRingConcurrentOverlap is the -race stress: many threads submit
// batches over overlapping objects, mixing chained writes, reads, resizes,
// and syncs through a shared Syncer.
func TestRingConcurrentOverlap(t *testing.T) {
	const nWorkers, nBatches = 8, 60
	env := newRingEnv(t, 4, 256)
	rs := &recordingSyncer{}
	var wg sync.WaitGroup
	errCh := make(chan error, nWorkers)
	for w := 0; w < nWorkers; w++ {
		tc := spawnWorker(t, env.k, env.tc, fmt.Sprintf("ring worker %d", w))
		wg.Add(1)
		go func(w int, tc *ThreadCall) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			ring := tc.NewRing()
			ring.SetSyncer(rs)
			for b := 0; b < nBatches; b++ {
				n := 1 + rng.Intn(8)
				for i := 0; i < n; i++ {
					ce := env.segs[rng.Intn(len(env.segs))]
					e := RingEntry{Seg: ce, Chain: i > 0 && rng.Intn(4) == 0}
					switch rng.Intn(5) {
					case 0:
						e.Op = OpSegmentRead
						e.Off, e.Len = rng.Intn(64), 64
					case 1:
						e.Op = OpSegmentWrite
						e.Off = rng.Intn(64)
						e.Data = []byte{byte(w), byte(b)}
					case 2:
						e.Op = OpSegmentLen
					case 3:
						e.Op = OpObjectStat
					case 4:
						e.Op = OpSync
					}
					ring.Submit(e)
				}
				comps, err := ring.Wait(n)
				if err != nil {
					select {
					case errCh <- fmt.Errorf("worker %d Wait: %w", w, err):
					default:
					}
					return
				}
				for i := range comps {
					if comps[i].Err != nil && !errors.Is(comps[i].Err, ErrSkipped) {
						select {
						case errCh <- fmt.Errorf("worker %d entry: %w", w, comps[i].Err):
						default:
						}
						return
					}
				}
			}
		}(w, tc)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	st := env.k.RingStats()
	if st.Waits == 0 || st.Entries == 0 {
		t.Errorf("no ring activity recorded: %+v", st)
	}
}

// TestRingGateEnterChainedReplyRead is the demux pattern OpGateEnter exists
// for: the gate entry writes a reply into a segment only the post-entry
// label may observe, and a chained OpSegmentRead in the same batch reads it
// back — which only works because the ring refreshes its thread snapshot
// after the gate transfer.
func TestRingGateEnterChainedReplyRead(t *testing.T) {
	k, tc := boot(t)
	root := k.RootContainer()
	u, _ := tc.CategoryCreateNamed("u")

	reply, err := tc.SegmentCreate(root, label.New(label.L1, label.P(u, label.L3)), "reply", 64)
	if err != nil {
		t.Fatal(err)
	}
	gateID, err := tc.GateCreate(root, GateSpec{
		Label:     label.New(label.L1, label.P(u, label.Star)),
		Clearance: label.New(label.L2),
		Descrip:   "session gate",
		Entry: func(call *GateCallCtx) []byte {
			if err := call.TC.SegmentWrite(CEnt{root, reply}, 0, append([]byte("re:"), call.Args...)); err != nil {
				return []byte("write failed: " + err.Error())
			}
			return []byte("ok")
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// An unprivileged client cannot read the reply segment directly.
	tid, _ := tc.ThreadCreate(root, ThreadSpec{Label: label.New(label.L1), Clearance: label.New(label.L2), Descrip: "client"})
	tc2, _ := k.ThreadCall(tid)
	if _, err := tc2.SegmentRead(CEnt{root, reply}, 0, 8); err == nil {
		t.Fatal("client must not read the reply segment before the gate call")
	}

	ring := tc2.NewRing()
	ring.Submit(
		RingEntry{Op: OpGateEnter, Seg: CEnt{root, gateID}, Gate: &GateRequest{
			Label:     label.New(label.L1, label.P(u, label.Star)),
			Clearance: label.New(label.L2),
			Verify:    label.New(label.L1),
			Args:      []byte("req1"),
		}},
		RingEntry{Op: OpSegmentRead, Seg: CEnt{root, reply}, Off: 0, Len: 7, Chain: true},
	)
	comps, err := ring.Wait(2)
	if err != nil {
		t.Fatal(err)
	}
	if comps[0].Err != nil || string(comps[0].Val) != "ok" {
		t.Fatalf("gate completion: val=%q err=%v", comps[0].Val, comps[0].Err)
	}
	if comps[1].Err != nil || string(comps[1].Val) != "re:req1" {
		t.Fatalf("chained reply read: val=%q err=%v", comps[1].Val, comps[1].Err)
	}
	if st := k.RingStats(); st.GateCalls != 1 {
		t.Errorf("GateCalls = %d, want 1", st.GateCalls)
	}
	// The thread keeps the label it acquired, as after a direct GateEnter.
	lbl, _ := tc2.SelfLabel()
	if !lbl.Owns(u) {
		t.Error("client should own u after the ring gate call")
	}
}

// TestRingGateEnterFailureSkipsChain checks that a rejected gate request
// fails its own chain (the reply read is skipped) without poisoning an
// independent chain in the same batch.
func TestRingGateEnterFailureSkipsChain(t *testing.T) {
	k, tc := boot(t)
	root := k.RootContainer()
	v, _ := tc.CategoryCreate()

	seg, _ := tc.SegmentCreate(root, label.New(label.L1), "plain", 8)
	_ = tc.SegmentWrite(CEnt{root, seg}, 0, []byte("plain!"))
	gateID, _ := tc.GateCreate(root, GateSpec{
		Label:     label.New(label.L1),
		Clearance: label.New(label.L2),
		Entry:     func(call *GateCallCtx) []byte { return []byte("ok") },
	})

	// Client tainted v2 tries to shed the taint across the gate: ErrLabel.
	tid, _ := tc.ThreadCreate(root, ThreadSpec{
		Label:     label.New(label.L1, label.P(v, label.L2)),
		Clearance: label.New(label.L2),
	})
	tc2, _ := k.ThreadCall(tid)
	ring := tc2.NewRing()
	ring.Submit(
		RingEntry{Op: OpGateEnter, Seg: CEnt{root, gateID}, Gate: &GateRequest{
			Label:     label.New(label.L1), // sheds v2: rejected
			Clearance: label.New(label.L2),
			Verify:    label.New(label.L1, label.P(v, label.L2)),
		}},
		RingEntry{Op: OpSegmentRead, Seg: CEnt{root, seg}, Off: 0, Len: 6, Chain: true},
		// Independent chain: must execute despite the failure above.
		RingEntry{Op: OpSegmentRead, Seg: CEnt{root, seg}, Off: 0, Len: 6},
	)
	comps, err := ring.Wait(3)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(comps[0].Err, ErrLabel) {
		t.Errorf("gate completion err = %v, want ErrLabel", comps[0].Err)
	}
	if !errors.Is(comps[1].Err, ErrSkipped) {
		t.Errorf("chained read err = %v, want ErrSkipped", comps[1].Err)
	}
	if comps[2].Err != nil || string(comps[2].Val) != "plain!" {
		t.Errorf("independent read: val=%q err=%v", comps[2].Val, comps[2].Err)
	}
	// The failed transfer must not have changed the thread's label.
	lbl, _ := tc2.SelfLabel()
	if lbl.Get(v) != label.L2 {
		t.Errorf("thread label changed by failed gate entry: %v", lbl)
	}
}

// TestRingGateEnterWrongType rejects OpGateEnter aimed at a non-gate.
func TestRingGateEnterWrongType(t *testing.T) {
	env := newRingEnv(t, 1, 64)
	ring := env.tc.NewRing()
	ring.Submit(RingEntry{Op: OpGateEnter, Seg: env.segs[0], Gate: &GateRequest{
		Label:     label.New(label.L1),
		Clearance: label.New(label.L2),
		Verify:    label.New(label.L1),
	}})
	comps, err := ring.Wait(1)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(comps[0].Err, ErrWrongType) {
		t.Errorf("err = %v, want ErrWrongType", comps[0].Err)
	}
}

// TestRingGateEnterMultipleSessions batches two independent
// gate-call+reply-read chains — two "sessions" with disjoint categories —
// in one Wait, verifying the snapshot refresh keeps each chain's read under
// the right label and neither session's privilege leaks into the other's
// transfer.
func TestRingGateEnterMultipleSessions(t *testing.T) {
	k, tc := boot(t)
	root := k.RootContainer()

	type sess struct {
		gate, reply ID
		cat         label.Category
	}
	var sessions []sess
	for i := 0; i < 2; i++ {
		c, _ := tc.CategoryCreateNamed(fmt.Sprintf("u%d", i))
		reply, err := tc.SegmentCreate(root, label.New(label.L1, label.P(c, label.L3)), fmt.Sprintf("reply%d", i), 64)
		if err != nil {
			t.Fatal(err)
		}
		msg := fmt.Sprintf("user%d-data", i)
		gateID, err := tc.GateCreate(root, GateSpec{
			Label:     label.New(label.L1, label.P(c, label.Star)),
			Clearance: label.New(label.L2),
			Entry: func(call *GateCallCtx) []byte {
				if err := call.TC.SegmentWrite(CEnt{root, reply}, 0, []byte(msg)); err != nil {
					return []byte("ERR")
				}
				return []byte("ok")
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, sess{gate: gateID, reply: reply, cat: c})
	}

	tid, _ := tc.ThreadCreate(root, ThreadSpec{Label: label.New(label.L1), Clearance: label.New(label.L2), Descrip: "demux lane"})
	lane, _ := k.ThreadCall(tid)
	ring := lane.NewRing()
	for _, s := range sessions {
		ring.Submit(
			RingEntry{Op: OpGateEnter, Seg: CEnt{root, s.gate}, Gate: &GateRequest{
				Label:     label.New(label.L1, label.P(s.cat, label.Star)),
				Clearance: label.New(label.L2),
				Verify:    label.New(label.L1),
			}},
			RingEntry{Op: OpSegmentRead, Seg: CEnt{root, s.reply}, Off: 0, Len: 10, Chain: true},
		)
	}
	comps, err := ring.Wait(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sessions {
		gc, rc := comps[2*i], comps[2*i+1]
		if gc.Err != nil || string(gc.Val) != "ok" {
			t.Errorf("session %d gate: val=%q err=%v", i, gc.Val, gc.Err)
		}
		want := fmt.Sprintf("user%d-data", i)
		if rc.Err != nil || string(rc.Val) != want {
			t.Errorf("session %d reply = %q (err=%v), want %q", i, rc.Val, rc.Err, want)
		}
	}
	if st := k.RingStats(); st.GateCalls != 2 {
		t.Errorf("GateCalls = %d, want 2", st.GateCalls)
	}
}
