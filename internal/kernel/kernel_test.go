package kernel

import (
	"errors"
	"testing"

	"histar/internal/label"
)

// boot creates a kernel and a root thread with full default privileges.
func boot(t testing.TB) (*Kernel, *ThreadCall) {
	t.Helper()
	k := New(Config{Seed: 1})
	tc, err := k.BootThread(label.New(label.L1), label.New(label.L2), "boot thread")
	if err != nil {
		t.Fatalf("BootThread: %v", err)
	}
	return k, tc
}

func TestBoot(t *testing.T) {
	k, tc := boot(t)
	if k.RootContainer() == NilID {
		t.Fatal("no root container")
	}
	lbl, err := tc.SelfLabel()
	if err != nil {
		t.Fatal(err)
	}
	if !lbl.Equal(label.New(label.L1)) {
		t.Errorf("boot thread label = %v", lbl)
	}
	clr, err := tc.SelfClearance()
	if err != nil {
		t.Fatal(err)
	}
	if !clr.Equal(label.New(label.L2)) {
		t.Errorf("boot thread clearance = %v", clr)
	}
	if k.ObjectCount() < 2 {
		t.Errorf("expected at least root container + thread, got %d", k.ObjectCount())
	}
}

func TestBootThreadRejectsBadLabels(t *testing.T) {
	k := New(Config{Seed: 1})
	// Label above clearance.
	if _, err := k.BootThread(label.New(label.L3), label.New(label.L2), "bad"); err == nil {
		t.Error("label above clearance should be rejected")
	}
	// Star default.
	if _, err := k.BootThread(label.New(label.L1).WithDefault(label.L1), label.New(label.L2), "ok"); err != nil {
		t.Errorf("valid boot thread rejected: %v", err)
	}
}

func TestCategoryCreateGrantsOwnership(t *testing.T) {
	_, tc := boot(t)
	c, err := tc.CategoryCreate()
	if err != nil {
		t.Fatal(err)
	}
	lbl, _ := tc.SelfLabel()
	if !lbl.Owns(c) {
		t.Error("creating thread must own the new category")
	}
	clr, _ := tc.SelfClearance()
	if clr.Get(c) != label.L3 {
		t.Errorf("clearance in new category = %v, want 3", clr.Get(c))
	}
}

func TestSelfSetLabelTaintAndRefuseUntaint(t *testing.T) {
	_, tc := boot(t)
	c, _ := tc.CategoryCreate()
	other, _ := tc.CategoryCreate()
	_ = other

	// Taint self in a category we do not own: allocate via a different
	// thread? Simpler: drop ownership by raising to c3 is allowed since we
	// own c. Use a brand new category from the allocator that nobody owns.
	lbl, _ := tc.SelfLabel()
	// Raise taint in an arbitrary (unowned) category up to clearance.
	unowned := label.Category(999999)
	if err := tc.SelfSetLabel(lbl.With(unowned, label.L2)); err != nil {
		t.Fatalf("tainting to level 2 should be allowed: %v", err)
	}
	// Going back down is not.
	lbl2, _ := tc.SelfLabel()
	if err := tc.SelfSetLabel(lbl2.With(unowned, label.L1)); err == nil {
		t.Error("untainting without ownership must fail")
	}
	// Raising beyond clearance (level 3 in an unowned category) must fail.
	if err := tc.SelfSetLabel(lbl2.With(unowned, label.L3)); err == nil {
		t.Error("tainting above clearance must fail")
	}
	// But in a category we own, any level is reachable because clearance was
	// raised to 3 at creation.
	if err := tc.SelfSetLabel(lbl2.With(c, label.L3)); err != nil {
		t.Errorf("owner should be able to taint itself to 3 in its category: %v", err)
	}
}

func TestSelfSetClearance(t *testing.T) {
	_, tc := boot(t)
	c, _ := tc.CategoryCreate()
	clr, _ := tc.SelfClearance()

	// Lowering clearance is allowed.
	if err := tc.SelfSetClearance(clr.With(c, label.L2)); err != nil {
		t.Fatalf("lowering clearance: %v", err)
	}
	// Raising it again in an owned category is allowed (CT ⊔ LTᴶ includes J).
	clr2, _ := tc.SelfClearance()
	if err := tc.SelfSetClearance(clr2.With(c, label.L3)); err != nil {
		t.Fatalf("owner raising clearance: %v", err)
	}
	// Raising clearance in an unowned category must fail.
	if err := tc.SelfSetClearance(clr2.With(label.Category(424242), label.L3)); err == nil {
		t.Error("raising clearance in unowned category must fail")
	}
	// Clearance below the label must fail.
	lbl, _ := tc.SelfLabel()
	if err := tc.SelfSetLabel(lbl.With(label.Category(7777), label.L2)); err != nil {
		t.Fatal(err)
	}
	bad := label.New(label.L2).With(label.Category(7777), label.L1)
	if err := tc.SelfSetClearance(bad); err == nil {
		t.Error("clearance below label must fail")
	}
}

func TestContainerCreateAndList(t *testing.T) {
	k, tc := boot(t)
	root := k.RootContainer()
	id, err := tc.ContainerCreate(root, label.New(label.L1), "homes", 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := tc.ContainerList(Self(root))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, x := range ids {
		if x == id {
			found = true
		}
	}
	if !found {
		t.Error("new container not listed in root")
	}
	// Parent lookup.
	parent, err := tc.ContainerGetParent(CEnt{Container: root, Object: id})
	if err != nil {
		t.Fatal(err)
	}
	if parent != root {
		t.Errorf("parent = %v, want root %v", parent, root)
	}
	// The root container has no parent.
	if _, err := tc.ContainerGetParent(Self(root)); !errors.Is(err, ErrNotFound) {
		t.Errorf("root parent err = %v, want ErrNotFound", err)
	}
}

func TestContainerCreateDeniedAboveClearance(t *testing.T) {
	k, tc := boot(t)
	root := k.RootContainer()
	c, _ := tc.CategoryCreate()
	// Label {c3,1} is within the creator's clearance (owner has clearance 3
	// in c), so allowed.
	if _, err := tc.ContainerCreate(root, label.New(label.L1, label.P(c, label.L3)), "tmp", 0, 1<<20); err != nil {
		t.Fatalf("owner creating c3 container: %v", err)
	}
	// A label at level 3 in an unowned category exceeds clearance {2}.
	if _, err := tc.ContainerCreate(root, label.New(label.L1, label.P(label.Category(31337), label.L3)), "tmp2", 0, 1<<20); err == nil {
		t.Error("creating object above clearance must fail")
	}
}

func TestAvoidTypes(t *testing.T) {
	k, tc := boot(t)
	root := k.RootContainer()
	noThreads, err := tc.ContainerCreate(root, label.New(label.L1), "no-threads", Mask(ObjThread), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	_, err = tc.ThreadCreate(noThreads, ThreadSpec{
		Label:     label.New(label.L1),
		Clearance: label.New(label.L2),
		Descrip:   "forbidden",
	})
	if !errors.Is(err, ErrAvoidType) {
		t.Errorf("thread creation in avoid-types container: err=%v, want ErrAvoidType", err)
	}
	// The restriction is inherited by descendants.
	child, err := tc.ContainerCreate(noThreads, label.New(label.L1), "child", 0, 1<<19)
	if err != nil {
		t.Fatal(err)
	}
	_, err = tc.ThreadCreate(child, ThreadSpec{Label: label.New(label.L1), Clearance: label.New(label.L2)})
	if !errors.Is(err, ErrAvoidType) {
		t.Errorf("avoid-types must be inherited: err=%v", err)
	}
	// Segments are still allowed.
	if _, err := tc.SegmentCreate(child, label.New(label.L1), "ok", 10); err != nil {
		t.Errorf("segment creation should still work: %v", err)
	}
}

func TestSegmentReadWriteResize(t *testing.T) {
	k, tc := boot(t)
	root := k.RootContainer()
	seg, err := tc.SegmentCreate(root, label.New(label.L1), "file", 8)
	if err != nil {
		t.Fatal(err)
	}
	ce := CEnt{Container: root, Object: seg}
	if err := tc.SegmentWrite(ce, 0, []byte("hello!!!")); err != nil {
		t.Fatal(err)
	}
	got, err := tc.SegmentRead(ce, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello!!!" {
		t.Errorf("read back %q", got)
	}
	// Extend by writing past the end (within slack quota).
	if err := tc.SegmentWrite(ce, 8, []byte(" world")); err != nil {
		t.Fatal(err)
	}
	n, _ := tc.SegmentLen(ce)
	if n != 14 {
		t.Errorf("len = %d, want 14", n)
	}
	if err := tc.SegmentResize(ce, 5); err != nil {
		t.Fatal(err)
	}
	n, _ = tc.SegmentLen(ce)
	if n != 5 {
		t.Errorf("after resize len = %d", n)
	}
	// Reading past the end truncates.
	got, err = tc.SegmentRead(ce, 0, 100)
	if err != nil || len(got) != 5 {
		t.Errorf("read past end: %q, %v", got, err)
	}
	// Quota bounds growth.
	if err := tc.SegmentResize(ce, 10*1024*1024); !errors.Is(err, ErrQuota) {
		t.Errorf("resize beyond quota: err=%v, want ErrQuota", err)
	}
}

func TestSegmentLabelEnforcement(t *testing.T) {
	k, tc := boot(t)
	root := k.RootContainer()
	c, _ := tc.CategoryCreate()

	// A secret segment {c3, 1} and an integrity-protected one {c0, 1},
	// created by the owner of c.
	secret, err := tc.SegmentCreate(root, label.New(label.L1, label.P(c, label.L3)), "secret", 4)
	if err != nil {
		t.Fatal(err)
	}
	protected, err := tc.SegmentCreate(root, label.New(label.L1, label.P(c, label.L0)), "protected", 4)
	if err != nil {
		t.Fatal(err)
	}

	// A second thread without ownership of c.
	tid, err := tc.ThreadCreate(root, ThreadSpec{
		Label:     label.New(label.L1),
		Clearance: label.New(label.L2),
		Descrip:   "unprivileged",
	})
	if err != nil {
		t.Fatal(err)
	}
	tc2, err := k.ThreadCall(tid)
	if err != nil {
		t.Fatal(err)
	}

	secretCE := CEnt{Container: root, Object: secret}
	protectedCE := CEnt{Container: root, Object: protected}

	// The unprivileged thread cannot read the secret.
	if _, err := tc2.SegmentRead(secretCE, 0, 4); !errors.Is(err, ErrLabel) {
		t.Errorf("read secret: err=%v, want ErrLabel", err)
	}
	// Nor write the protected segment.
	if err := tc2.SegmentWrite(protectedCE, 0, []byte("x")); !errors.Is(err, ErrLabel) {
		t.Errorf("write protected: err=%v, want ErrLabel", err)
	}
	// But it can read the protected segment (c0 only restricts writes).
	if _, err := tc2.SegmentRead(protectedCE, 0, 4); err != nil {
		t.Errorf("read protected: %v", err)
	}
	// The owner can do everything.
	if err := tc.SegmentWrite(secretCE, 0, []byte("ssh!")); err != nil {
		t.Errorf("owner write secret: %v", err)
	}
	if err := tc.SegmentWrite(protectedCE, 0, []byte("ok")); err != nil {
		t.Errorf("owner write protected: %v", err)
	}
	// Tainted readers can observe the secret but then cannot write untainted
	// objects — enforced via SelfSetLabel plus the modify check.
	lbl2, _ := tc2.SelfLabel()
	if err := tc2.SelfSetLabel(lbl2.With(c, label.L2)); err != nil {
		t.Fatalf("tainting to 2: %v", err)
	}
	// Level 2 is still below the secret's 3; clearance {2} blocks 3.
	if _, err := tc2.SegmentRead(secretCE, 0, 4); err == nil {
		t.Error("level-2 taint must not read a level-3 secret")
	}
}

func TestSegmentCopyAcrossLabels(t *testing.T) {
	k, tc := boot(t)
	root := k.RootContainer()
	c, _ := tc.CategoryCreate()
	src, err := tc.SegmentCreate(root, label.New(label.L1), "plain", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.SegmentWrite(CEnt{root, src}, 0, []byte("data")); err != nil {
		t.Fatal(err)
	}
	// Copy it to a tainted label (the copy becomes secret).
	cp, err := tc.SegmentCopy(CEnt{root, src}, root, label.New(label.L1, label.P(c, label.L3)), "tainted copy")
	if err != nil {
		t.Fatal(err)
	}
	got, err := tc.SegmentRead(CEnt{root, cp}, 0, 4)
	if err != nil || string(got) != "data" {
		t.Errorf("copy contents = %q, %v", got, err)
	}
}

func TestImmutableObjects(t *testing.T) {
	k, tc := boot(t)
	root := k.RootContainer()
	seg, _ := tc.SegmentCreate(root, label.New(label.L1), "ro", 4)
	ce := CEnt{root, seg}
	if err := tc.SegmentWrite(ce, 0, []byte("once")); err != nil {
		t.Fatal(err)
	}
	if err := tc.ObjectSetImmutable(ce); err != nil {
		t.Fatal(err)
	}
	if err := tc.SegmentWrite(ce, 0, []byte("more")); !errors.Is(err, ErrImmutable) {
		t.Errorf("write to immutable: err=%v", err)
	}
	if err := tc.SegmentResize(ce, 0); !errors.Is(err, ErrImmutable) {
		t.Errorf("resize immutable: err=%v", err)
	}
	// Reads still work.
	if got, err := tc.SegmentRead(ce, 0, 4); err != nil || string(got) != "once" {
		t.Errorf("read immutable: %q %v", got, err)
	}
}

func TestObjectStatAndMetadata(t *testing.T) {
	k, tc := boot(t)
	root := k.RootContainer()
	seg, _ := tc.SegmentCreate(root, label.New(label.L1), "meta-test", 4)
	ce := CEnt{root, seg}
	st, err := tc.ObjectStat(ce)
	if err != nil {
		t.Fatal(err)
	}
	if st.Type != ObjSegment || st.Descrip != "meta-test" {
		t.Errorf("stat = %+v", st)
	}
	var md [MetadataSize]byte
	copy(md[:], "mtime=12345")
	if err := tc.ObjectSetMetadata(ce, md); err != nil {
		t.Fatal(err)
	}
	st, _ = tc.ObjectStat(ce)
	if string(st.Metadata[:11]) != "mtime=12345" {
		t.Errorf("metadata = %q", st.Metadata[:11])
	}
	// Descriptive strings are truncated to 32 bytes.
	long := "this descriptive string is much longer than thirty-two bytes"
	seg2, _ := tc.SegmentCreate(root, label.New(label.L1), long, 1)
	st2, _ := tc.ObjectStat(CEnt{root, seg2})
	if len(st2.Descrip) != DescripSize {
		t.Errorf("descrip length = %d, want %d", len(st2.Descrip), DescripSize)
	}
}

func TestUnrefAndRecursiveDealloc(t *testing.T) {
	k, tc := boot(t)
	root := k.RootContainer()
	dir, _ := tc.ContainerCreate(root, label.New(label.L1), "dir", 0, 1<<20)
	seg, _ := tc.SegmentCreate(dir, label.New(label.L1), "f", 4)
	sub, _ := tc.ContainerCreate(dir, label.New(label.L1), "sub", 0, 1<<19)
	seg2, _ := tc.SegmentCreate(sub, label.New(label.L1), "g", 4)

	before := k.ObjectCount()
	if err := tc.Unref(root, dir); err != nil {
		t.Fatal(err)
	}
	after := k.ObjectCount()
	if after != before-4 {
		t.Errorf("expected 4 objects reclaimed, got %d -> %d", before, after)
	}
	// All are gone.
	for _, id := range []ID{dir, seg, sub, seg2} {
		if _, err := k.Describe(id); !errors.Is(err, ErrNoSuchObject) {
			t.Errorf("object %v should be deallocated, err=%v", id, err)
		}
	}
	// The root container can never be unreferenced.
	if err := tc.Unref(root, root); !errors.Is(err, ErrRootContainer) {
		t.Errorf("unref root: err=%v", err)
	}
}

func TestHardLinkKeepsObjectAlive(t *testing.T) {
	k, tc := boot(t)
	root := k.RootContainer()
	dirA, _ := tc.ContainerCreate(root, label.New(label.L1), "a", 0, 1<<20)
	dirB, _ := tc.ContainerCreate(root, label.New(label.L1), "b", 0, 1<<20)
	seg, _ := tc.SegmentCreate(dirA, label.New(label.L1), "shared", 4)

	// Linking requires the fixed-quota flag.
	err := tc.Link(dirB, CEnt{dirA, seg})
	if !errors.Is(err, ErrFixedQuota) {
		t.Fatalf("link without fixed quota: err=%v", err)
	}
	if err := tc.ObjectSetFixedQuota(CEnt{dirA, seg}); err != nil {
		t.Fatal(err)
	}
	if err := tc.Link(dirB, CEnt{dirA, seg}); err != nil {
		t.Fatal(err)
	}
	// Remove from A; still reachable through B.
	if err := tc.Unref(dirA, seg); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.SegmentRead(CEnt{dirB, seg}, 0, 4); err != nil {
		t.Errorf("segment should survive via second link: %v", err)
	}
	// Remove from B; now it is deallocated.
	if err := tc.Unref(dirB, seg); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.SegmentRead(CEnt{dirB, seg}, 0, 4); err == nil {
		t.Error("segment should be gone after last unref")
	}
}

func TestQuotaEnforcement(t *testing.T) {
	k, tc := boot(t)
	root := k.RootContainer()
	small, err := tc.ContainerCreate(root, label.New(label.L1), "small", 0, 40*1024)
	if err != nil {
		t.Fatal(err)
	}
	// One segment fits.
	if _, err := tc.SegmentCreate(small, label.New(label.L1), "a", 1024); err != nil {
		t.Fatal(err)
	}
	// A second one of the same size exceeds the container's quota
	// (each segment is charged size+slack).
	if _, err := tc.SegmentCreate(small, label.New(label.L1), "b", 20*1024); !errors.Is(err, ErrQuota) {
		t.Errorf("expected quota failure, got %v", err)
	}
}

func TestQuotaMove(t *testing.T) {
	k, tc := boot(t)
	root := k.RootContainer()
	dir, _ := tc.ContainerCreate(root, label.New(label.L1), "dir", 0, 1<<20)
	seg, _ := tc.SegmentCreate(dir, label.New(label.L1), "grow", 8)
	ce := CEnt{dir, seg}

	// Growing past the initial quota fails until quota_move adds room.
	big := make([]byte, 64*1024)
	if err := tc.SegmentWrite(ce, 0, big); !errors.Is(err, ErrQuota) {
		t.Fatalf("expected quota error, got %v", err)
	}
	if err := tc.QuotaMove(dir, seg, 128*1024); err != nil {
		t.Fatal(err)
	}
	if err := tc.SegmentWrite(ce, 0, big); err != nil {
		t.Fatalf("write after quota_move: %v", err)
	}
	// Shrinking below current usage fails and reports ErrQuota.
	if err := tc.QuotaMove(dir, seg, -(128*1024 + segmentSlack)); !errors.Is(err, ErrQuota) {
		t.Errorf("shrinking below usage: err=%v", err)
	}
	// A modest shrink succeeds.
	if err := tc.QuotaMove(dir, seg, -1024); err != nil {
		t.Errorf("modest shrink: %v", err)
	}
	// quota_move on an object with the fixed-quota flag fails.
	seg2, _ := tc.SegmentCreate(dir, label.New(label.L1), "fixed", 8)
	if err := tc.ObjectSetFixedQuota(CEnt{dir, seg2}); err != nil {
		t.Fatal(err)
	}
	if err := tc.QuotaMove(dir, seg2, 4096); !errors.Is(err, ErrFixedQuota) {
		t.Errorf("quota_move on fixed-quota object: err=%v", err)
	}
}

func TestBoundsOverflowRejected(t *testing.T) {
	k, tc := boot(t)
	root := k.RootContainer()
	seg, err := tc.SegmentCreate(root, label.New(label.L1), "bounds", 16)
	if err != nil {
		t.Fatal(err)
	}
	ce := CEnt{Container: root, Object: seg}
	const maxInt = int(^uint(0) >> 1)
	// Offsets near the top of the range must fail cleanly, not wrap around
	// the bounds checks and panic.
	if err := tc.FutexWait(ce, ^uint64(0), 0); !errors.Is(err, ErrInvalid) {
		t.Errorf("FutexWait(max offset): err=%v, want ErrInvalid", err)
	}
	if _, err := tc.SegmentCompareSwap(ce, ^uint64(0), 0, 1); !errors.Is(err, ErrInvalid) {
		t.Errorf("SegmentCompareSwap(max offset): err=%v, want ErrInvalid", err)
	}
	if got, err := tc.SegmentRead(ce, 1, maxInt); err != nil || len(got) != 15 {
		t.Errorf("SegmentRead(1, maxInt) = %d bytes, %v; want 15, nil", len(got), err)
	}
	if err := tc.SegmentWrite(ce, maxInt-4, []byte("overflow")); !errors.Is(err, ErrQuota) {
		t.Errorf("SegmentWrite(maxInt-4): err=%v, want ErrQuota", err)
	}
}

func TestSyscallCounting(t *testing.T) {
	k, tc := boot(t)
	k.ResetSyscallCounts()
	root := k.RootContainer()
	if _, err := tc.SegmentCreate(root, label.New(label.L1), "x", 1); err != nil {
		t.Fatal(err)
	}
	tc.SegmentLen(CEnt{root, 0}) // error path still counts
	if k.SyscallTotal() < 2 {
		t.Errorf("expected at least 2 syscalls counted, got %d", k.SyscallTotal())
	}
	counts := k.SyscallCounts()
	if counts["segment_create"] != 1 {
		t.Errorf("segment_create count = %d", counts["segment_create"])
	}
	if tc.SyscallsIssued() < 2 {
		t.Errorf("per-thread syscall count = %d", tc.SyscallsIssued())
	}
}

func TestContainerFindLabeled(t *testing.T) {
	k, tc := boot(t)
	root := k.RootContainer()
	cat, err := tc.CategoryCreate()
	if err != nil {
		t.Fatal(err)
	}
	taint := label.New(label.L1, label.P(cat, label.L3))
	plain := label.New(label.L1)

	var tainted []ID
	for i := 0; i < 3; i++ {
		id, err := tc.SegmentCreate(root, taint, "tainted seg", 64)
		if err != nil {
			t.Fatal(err)
		}
		tainted = append(tainted, id)
	}
	if _, err := tc.SegmentCreate(root, plain, "plain seg", 64); err != nil {
		t.Fatal(err)
	}

	got, err := tc.ContainerFindLabeled(Self(root), taint.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tainted) {
		t.Fatalf("found %d tainted objects, want %d (%v)", len(got), len(tainted), got)
	}
	want := make(map[ID]bool)
	for _, id := range tainted {
		want[id] = true
	}
	for _, id := range got {
		if !want[id] {
			t.Errorf("unexpected object %v in tainted scan", id)
		}
	}

	// The plain fingerprint matches the root container, boot thread, and the
	// plain segment, but never the tainted ones.
	got, err = tc.ContainerFindLabeled(Self(root), plain.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range got {
		if want[id] {
			t.Errorf("tainted object %v matched the plain fingerprint", id)
		}
	}

	// A thread that cannot observe the taint category must not see the
	// tainted entries in its scan results.
	low, err := tc.ThreadCreate(root, ThreadSpec{Label: label.New(label.L1), Clearance: label.New(label.L2), Descrip: "low thread"})
	if err != nil {
		t.Fatal(err)
	}
	ltc, err := k.ThreadCall(low)
	if err != nil {
		t.Fatal(err)
	}
	got, err = ltc.ContainerFindLabeled(Self(root), taint.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("unprivileged thread saw %d tainted objects", len(got))
	}

	// Syscall accounting.
	if n := k.SyscallCounts()["container_find_labeled"]; n == 0 {
		t.Error("container_find_labeled not counted")
	}
}
