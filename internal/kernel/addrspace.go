package kernel

import (
	"histar/internal/label"
)

// PageSize is the simulated page size.
const PageSize = 4096

// Mapping is the externally visible form of an address-space entry:
// VA → 〈segment container entry, offset, npages, flags〉.
type Mapping struct {
	VA     uint64
	Seg    CEnt
	Offset uint64
	NPages uint64
	Flags  MapFlags
}

// AddressSpaceCreate creates an address space object with label l in
// container d.
func (tc *ThreadCall) AddressSpaceCreate(d ID, l label.Label, descrip string) (ID, error) {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return NilID, err
	}
	tc.k.count("as_create", t)
	if !label.ValidObjectLabel(l) {
		return NilID, ErrInvalid
	}
	cont, err := tc.k.lookupContainer(d)
	if err != nil {
		return NilID, err
	}
	if cont.immutable {
		return NilID, ErrImmutable
	}
	if cont.avoidTypes.Has(ObjAddressSpace) {
		return NilID, ErrAvoidType
	}
	if !tc.k.canModify(t.lbl, cont.lbl) {
		return NilID, ErrLabel
	}
	if !label.CanAllocate(t.lbl, t.clearance, l) {
		return NilID, ErrLabel
	}
	const quota = 64 * 1024
	if err := tc.k.chargeLocked(cont, quota); err != nil {
		return NilID, err
	}
	a := &addressSpace{
		header: header{
			id:      tc.k.newID(),
			objType: ObjAddressSpace,
			lbl:     label.Intern(l),
			quota:   quota,
			descrip: truncDescrip(descrip),
		},
	}
	a.usage = a.footprint()
	tc.k.objects[a.id] = a
	cont.link(a.id)
	a.refs = 1
	return a.id, nil
}

// AddressSpaceSet replaces the mappings of the address space named by ce.
// The invoking thread must be able to modify the address space
// (LT ⊑ LA ⊑ LTᴶ).
func (tc *ThreadCall) AddressSpaceSet(ce CEnt, maps []Mapping) error {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return err
	}
	tc.k.count("as_set", t)
	a, err := tc.asForWrite(t, ce)
	if err != nil {
		return err
	}
	a.mappings = a.mappings[:0]
	for _, m := range maps {
		if m.VA%PageSize != 0 {
			return ErrInvalid
		}
		a.mappings = append(a.mappings, mapping{
			VA: m.VA, Seg: m.Seg, Offset: m.Offset, NPages: m.NPages, Flags: m.Flags,
		})
	}
	a.bump()
	return nil
}

// AddressSpaceGet returns the current mappings of the address space named by
// ce.  The invoking thread must be able to observe it (LA ⊑ LTᴶ).
func (tc *ThreadCall) AddressSpaceGet(ce CEnt) ([]Mapping, error) {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return nil, err
	}
	tc.k.count("as_get", t)
	a, err := tc.asForRead(t, ce)
	if err != nil {
		return nil, err
	}
	out := make([]Mapping, 0, len(a.mappings))
	for _, m := range a.mappings {
		out = append(out, Mapping{VA: m.VA, Seg: m.Seg, Offset: m.Offset, NPages: m.NPages, Flags: m.Flags})
	}
	return out, nil
}

// AddressSpaceAddMapping appends one mapping without replacing the rest.
func (tc *ThreadCall) AddressSpaceAddMapping(ce CEnt, m Mapping) error {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return err
	}
	tc.k.count("as_add_mapping", t)
	a, err := tc.asForWrite(t, ce)
	if err != nil {
		return err
	}
	if m.VA%PageSize != 0 {
		return ErrInvalid
	}
	a.mappings = append(a.mappings, mapping{VA: m.VA, Seg: m.Seg, Offset: m.Offset, NPages: m.NPages, Flags: m.Flags})
	a.bump()
	return nil
}

// AddressSpaceRemoveMapping removes the mapping that starts at va.
func (tc *ThreadCall) AddressSpaceRemoveMapping(ce CEnt, va uint64) error {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return err
	}
	tc.k.count("as_remove_mapping", t)
	a, err := tc.asForWrite(t, ce)
	if err != nil {
		return err
	}
	for i, m := range a.mappings {
		if m.VA == va {
			a.mappings = append(a.mappings[:i], a.mappings[i+1:]...)
			a.bump()
			return nil
		}
	}
	return ErrNoMapping
}

// SetFaultHandler registers a user-mode page-fault handler on the address
// space, invoked when a memory access fails its checks.  By default a fault
// kills the process (the user-level library's choice).
func (tc *ThreadCall) SetFaultHandler(ce CEnt, h func(va uint64, write bool, err error)) error {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return err
	}
	tc.k.count("as_set_fault_handler", t)
	a, err := tc.asForWrite(t, ce)
	if err != nil {
		return err
	}
	a.faultHandler = h
	return nil
}

func (tc *ThreadCall) asForRead(t *thread, ce CEnt) (*addressSpace, error) {
	obj, err := tc.k.resolve(t.lbl, ce)
	if err != nil {
		return nil, err
	}
	a, ok := obj.(*addressSpace)
	if !ok {
		return nil, ErrWrongType
	}
	if !tc.k.canObserve(t.lbl, a.lbl) {
		return nil, ErrLabel
	}
	return a, nil
}

func (tc *ThreadCall) asForWrite(t *thread, ce CEnt) (*addressSpace, error) {
	obj, err := tc.k.resolve(t.lbl, ce)
	if err != nil {
		return nil, err
	}
	a, ok := obj.(*addressSpace)
	if !ok {
		return nil, ErrWrongType
	}
	if a.immutable {
		return nil, ErrImmutable
	}
	if !tc.k.canModify(t.lbl, a.lbl) {
		return nil, ErrLabel
	}
	return a, nil
}

// MemRead simulates a load through the invoking thread's address space.
// The kernel looks up the faulting address, finds the backing segment, and
// performs the page-fault label checks: the thread must be able to read the
// mapping's container and segment (LD ⊑ LTᴶ and LO ⊑ LTᴶ).
func (tc *ThreadCall) MemRead(va uint64, n int) ([]byte, error) {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return nil, err
	}
	tc.k.count("mem_read", t)
	seg, off, err := tc.pageFault(t, va, n, false)
	if err != nil {
		return nil, err
	}
	end := off + n
	if end > len(seg.data) {
		end = len(seg.data)
	}
	if off > len(seg.data) {
		off = len(seg.data)
	}
	out := make([]byte, end-off)
	copy(out, seg.data[off:end])
	return out, nil
}

// MemWrite simulates a store through the invoking thread's address space;
// the mapping must include write permission and the thread must additionally
// be able to modify the segment (LT ⊑ LO).
func (tc *ThreadCall) MemWrite(va uint64, data []byte) error {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return err
	}
	tc.k.count("mem_write", t)
	seg, off, err := tc.pageFault(t, va, len(data), true)
	if err != nil {
		return err
	}
	end := off + len(data)
	if end > len(seg.data) {
		if uint64(end)+128 > seg.quota {
			return ErrQuota
		}
		grown := make([]byte, end)
		copy(grown, seg.data)
		seg.data = grown
	}
	copy(seg.data[off:], data)
	seg.usage = seg.footprint()
	seg.bump()
	return nil
}

// pageFault resolves a virtual address through the thread's address space,
// applying the label checks of Section 3.4.  It returns the backing segment
// and the byte offset within it.  On failure the address space's user-mode
// fault handler, if any, is notified (outside the error return so callers
// still see the error).
func (tc *ThreadCall) pageFault(t *thread, va uint64, n int, write bool) (*segment, int, error) {
	seg, off, err := tc.pageFaultInner(t, va, n, write)
	if err != nil {
		if t.addressSpace.Object != NilID {
			if aso, lerr := tc.k.lookup(t.addressSpace.Object); lerr == nil {
				if as, ok := aso.(*addressSpace); ok && as.faultHandler != nil {
					h := as.faultHandler
					// Invoke without the kernel lock to let the handler issue
					// system calls; re-acquire before returning.
					tc.k.mu.Unlock()
					h(va, write, err)
					tc.k.mu.Lock()
				}
			}
		}
	}
	return seg, off, err
}

func (tc *ThreadCall) pageFaultInner(t *thread, va uint64, n int, write bool) (*segment, int, error) {
	if t.addressSpace.Object == NilID {
		return nil, 0, ErrNoMapping
	}
	aso, err := tc.k.lookup(t.addressSpace.Object)
	if err != nil {
		return nil, 0, err
	}
	as, ok := aso.(*addressSpace)
	if !ok {
		return nil, 0, ErrWrongType
	}
	// The thread must be able to use its address space at all.
	if !tc.k.canObserve(t.lbl, as.lbl) {
		return nil, 0, ErrLabel
	}
	for _, m := range as.mappings {
		lo := m.VA
		hi := m.VA + m.NPages*PageSize
		if va < lo || va >= hi {
			continue
		}
		if write && m.Flags&MapWrite == 0 {
			return nil, 0, ErrAccess
		}
		if !write && m.Flags&MapRead == 0 {
			return nil, 0, ErrAccess
		}
		// Thread-local segment mapping: always accessible to its owner.
		if m.Flags&MapThreadLocal != 0 {
			return t.localSegment, int(va - lo), nil
		}
		// Page-fault label checks: read container and segment, plus modify
		// for writes.
		cont, err := tc.k.lookupContainer(m.Seg.Container)
		if err != nil {
			return nil, 0, err
		}
		if !tc.k.canObserve(t.lbl, cont.lbl) {
			return nil, 0, ErrLabel
		}
		if m.Seg.Object != m.Seg.Container && !cont.entries[m.Seg.Object] {
			return nil, 0, ErrNoSuchObject
		}
		so, err := tc.k.lookup(m.Seg.Object)
		if err != nil {
			return nil, 0, err
		}
		seg, ok := so.(*segment)
		if !ok {
			return nil, 0, ErrWrongType
		}
		if !tc.k.canObserve(t.lbl, seg.lbl) {
			return nil, 0, ErrLabel
		}
		if write {
			if seg.immutable {
				return nil, 0, ErrImmutable
			}
			if !tc.k.leq(t.lbl, seg.lbl) {
				return nil, 0, ErrLabel
			}
		}
		return seg, int(uint64(va-lo) + m.Offset), nil
	}
	return nil, 0, ErrNoMapping
}
