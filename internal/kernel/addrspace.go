package kernel

import (
	"histar/internal/label"
)

// PageSize is the simulated page size.
const PageSize = 4096

// Mapping is the externally visible form of an address-space entry:
// VA → 〈segment container entry, offset, npages, flags〉.
type Mapping struct {
	VA     uint64
	Seg    CEnt
	Offset uint64
	NPages uint64
	Flags  MapFlags
}

// AddressSpaceCreate creates an address space object with label l in
// container d.
func (tc *ThreadCall) AddressSpaceCreate(d ID, l label.Label, descrip string) (ID, error) {
	ctx, err := tc.enter(scASCreate)
	if err != nil {
		return NilID, err
	}
	if !label.ValidObjectLabel(l) {
		return NilID, ErrInvalid
	}
	cont, err := tc.k.lookupContainer(d)
	if err != nil {
		return NilID, err
	}
	if cont.avoidTypes.Has(ObjAddressSpace) {
		return NilID, ErrAvoidType
	}
	if !tc.k.canModifyT(ctx.t, ctx.lbl, cont.lbl) {
		return NilID, ErrLabel
	}
	if !label.CanAllocate(ctx.lbl, ctx.clearance, l) {
		return NilID, ErrLabel
	}
	const quota = 64 * 1024
	a := &addressSpace{
		header: header{
			id:      tc.k.newID(),
			objType: ObjAddressSpace,
			lbl:     label.Intern(l),
			quota:   quota,
			descrip: truncDescrip(descrip),
			refs:    1,
		},
	}
	a.usage = a.footprint()
	cont.mu.Lock()
	defer cont.mu.Unlock()
	if !liveLocked(cont) {
		return NilID, ErrNoSuchObject
	}
	if cont.immutable {
		return NilID, ErrImmutable
	}
	if err := tc.k.charge(cont, quota); err != nil {
		return NilID, err
	}
	tc.k.insert(a)
	cont.link(a.id)
	return a.id, nil
}

// resolveAS resolves ce to its container and address space with no locks
// held.
func (tc *ThreadCall) resolveAS(ctx tctx, ce CEnt) (*container, *addressSpace, error) {
	cont, obj, err := tc.k.peek(ctx, ce)
	if err != nil {
		return nil, nil, err
	}
	a, ok := obj.(*addressSpace)
	if !ok {
		return nil, nil, ErrWrongType
	}
	return cont, a, nil
}

// AddressSpaceSet replaces the mappings of the address space named by ce.
// The invoking thread must be able to modify the address space
// (LT ⊑ LA ⊑ LTᴶ).
func (tc *ThreadCall) AddressSpaceSet(ce CEnt, maps []Mapping) error {
	ctx, err := tc.enter(scASSet)
	if err != nil {
		return err
	}
	cont, a, err := tc.resolveAS(ctx, ce)
	if err != nil {
		return err
	}
	if !tc.k.canModifyT(ctx.t, ctx.lbl, a.lbl) {
		return ErrLabel
	}
	ls := lockOrdered(objLock{cont, false}, objLock{a, true})
	defer ls.unlock()
	if err := verifyEntryLive(cont, a); err != nil {
		return err
	}
	if a.immutable {
		return ErrImmutable
	}
	a.mappings = a.mappings[:0]
	for _, m := range maps {
		if m.VA%PageSize != 0 {
			return ErrInvalid
		}
		a.mappings = append(a.mappings, mapping{
			VA: m.VA, Seg: m.Seg, Offset: m.Offset, NPages: m.NPages, Flags: m.Flags,
		})
	}
	a.bump()
	return nil
}

// AddressSpaceGet returns the current mappings of the address space named by
// ce.  The invoking thread must be able to observe it (LA ⊑ LTᴶ).
func (tc *ThreadCall) AddressSpaceGet(ce CEnt) ([]Mapping, error) {
	ctx, err := tc.enter(scASGet)
	if err != nil {
		return nil, err
	}
	cont, a, err := tc.resolveAS(ctx, ce)
	if err != nil {
		return nil, err
	}
	if !tc.k.canObserveT(ctx.t, ctx.lbl, a.lbl) {
		return nil, ErrLabel
	}
	ls := lockOrdered(objLock{cont, false}, objLock{a, false})
	defer ls.unlock()
	if err := verifyEntryLive(cont, a); err != nil {
		return nil, err
	}
	out := make([]Mapping, 0, len(a.mappings))
	for _, m := range a.mappings {
		out = append(out, Mapping{VA: m.VA, Seg: m.Seg, Offset: m.Offset, NPages: m.NPages, Flags: m.Flags})
	}
	return out, nil
}

// AddressSpaceAddMapping appends one mapping without replacing the rest.
func (tc *ThreadCall) AddressSpaceAddMapping(ce CEnt, m Mapping) error {
	ctx, err := tc.enter(scASAddMapping)
	if err != nil {
		return err
	}
	cont, a, err := tc.resolveAS(ctx, ce)
	if err != nil {
		return err
	}
	if !tc.k.canModifyT(ctx.t, ctx.lbl, a.lbl) {
		return ErrLabel
	}
	if m.VA%PageSize != 0 {
		return ErrInvalid
	}
	ls := lockOrdered(objLock{cont, false}, objLock{a, true})
	defer ls.unlock()
	if err := verifyEntryLive(cont, a); err != nil {
		return err
	}
	if a.immutable {
		return ErrImmutable
	}
	a.mappings = append(a.mappings, mapping{VA: m.VA, Seg: m.Seg, Offset: m.Offset, NPages: m.NPages, Flags: m.Flags})
	a.bump()
	return nil
}

// AddressSpaceRemoveMapping removes the mapping that starts at va.
func (tc *ThreadCall) AddressSpaceRemoveMapping(ce CEnt, va uint64) error {
	ctx, err := tc.enter(scASRemoveMapping)
	if err != nil {
		return err
	}
	cont, a, err := tc.resolveAS(ctx, ce)
	if err != nil {
		return err
	}
	if !tc.k.canModifyT(ctx.t, ctx.lbl, a.lbl) {
		return ErrLabel
	}
	ls := lockOrdered(objLock{cont, false}, objLock{a, true})
	defer ls.unlock()
	if err := verifyEntryLive(cont, a); err != nil {
		return err
	}
	if a.immutable {
		return ErrImmutable
	}
	for i, m := range a.mappings {
		if m.VA == va {
			a.mappings = append(a.mappings[:i], a.mappings[i+1:]...)
			a.bump()
			return nil
		}
	}
	return ErrNoMapping
}

// SetFaultHandler registers a user-mode page-fault handler on the address
// space, invoked when a memory access fails its checks.  By default a fault
// kills the process (the user-level library's choice).
func (tc *ThreadCall) SetFaultHandler(ce CEnt, h func(va uint64, write bool, err error)) error {
	ctx, err := tc.enter(scASSetFaultHandler)
	if err != nil {
		return err
	}
	cont, a, err := tc.resolveAS(ctx, ce)
	if err != nil {
		return err
	}
	if !tc.k.canModifyT(ctx.t, ctx.lbl, a.lbl) {
		return ErrLabel
	}
	ls := lockOrdered(objLock{cont, false}, objLock{a, true})
	defer ls.unlock()
	if err := verifyEntryLive(cont, a); err != nil {
		return err
	}
	if a.immutable {
		return ErrImmutable
	}
	a.faultHandler = h
	return nil
}

// MemRead simulates a load through the invoking thread's address space.
// The kernel looks up the faulting address, finds the backing segment, and
// performs the page-fault label checks: the thread must be able to read the
// mapping's container and segment (LD ⊑ LTᴶ and LO ⊑ LTᴶ).
func (tc *ThreadCall) MemRead(va uint64, n int) ([]byte, error) {
	ctx, err := tc.enter(scMemRead)
	if err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, ErrInvalid
	}
	seg, off, err := tc.pageFault(ctx, va, n, false)
	if err != nil {
		return nil, err
	}
	seg.mu.RLock()
	defer seg.mu.RUnlock()
	if !liveLocked(seg) {
		return nil, ErrNoSuchObject
	}
	if off < 0 { // int overflow from a huge mapping offset
		return nil, ErrInvalid
	}
	// Clamp without computing off+n, which could overflow int.
	if off > len(seg.data) {
		off = len(seg.data)
	}
	end := len(seg.data)
	if n < end-off {
		end = off + n
	}
	out := make([]byte, end-off)
	copy(out, seg.data[off:end])
	return out, nil
}

// MemWrite simulates a store through the invoking thread's address space;
// the mapping must include write permission and the thread must additionally
// be able to modify the segment (LT ⊑ LO).
func (tc *ThreadCall) MemWrite(va uint64, data []byte) error {
	ctx, err := tc.enter(scMemWrite)
	if err != nil {
		return err
	}
	seg, off, err := tc.pageFault(ctx, va, len(data), true)
	if err != nil {
		return err
	}
	seg.mu.Lock()
	defer seg.mu.Unlock()
	if !liveLocked(seg) {
		return ErrNoSuchObject
	}
	if seg.immutable {
		// Rechecked under the write lock; the fault handler (if any) was
		// already notified by pageFault when the flag was set earlier.
		return ErrImmutable
	}
	end := off + len(data)
	if end < off || off < 0 { // int overflow from a huge mapping offset
		return ErrQuota
	}
	if end > len(seg.data) {
		if uint64(end)+128 > seg.quota {
			return ErrQuota
		}
		grown := make([]byte, end)
		copy(grown, seg.data)
		seg.data = grown
	}
	copy(seg.data[off:], data)
	seg.usage = seg.footprint()
	seg.bump()
	return nil
}

// pageFault resolves a virtual address through the thread's address space,
// applying the label checks of Section 3.4.  It returns the backing segment
// and the byte offset within it; the caller locks the segment to touch its
// data.  On failure the address space's user-mode fault handler, if any, is
// notified (outside the error return so callers still see the error); the
// handler runs with no kernel locks held, so it may issue system calls.
func (tc *ThreadCall) pageFault(ctx tctx, va uint64, n int, write bool) (*segment, int, error) {
	seg, off, err := tc.pageFaultInner(ctx, va, n, write)
	if err != nil {
		if ctx.as.Object != NilID {
			if aso, lerr := tc.k.lookup(ctx.as.Object); lerr == nil {
				if as, ok := aso.(*addressSpace); ok {
					as.mu.RLock()
					h := as.faultHandler
					as.mu.RUnlock()
					if h != nil {
						h(va, write, err)
					}
				}
			}
		}
	}
	return seg, off, err
}

func (tc *ThreadCall) pageFaultInner(ctx tctx, va uint64, n int, write bool) (*segment, int, error) {
	if ctx.as.Object == NilID {
		return nil, 0, ErrNoMapping
	}
	aso, err := tc.k.lookup(ctx.as.Object)
	if err != nil {
		return nil, 0, err
	}
	as, ok := aso.(*addressSpace)
	if !ok {
		return nil, 0, ErrWrongType
	}
	// The thread must be able to use its address space at all.
	if !tc.k.canObserveT(ctx.t, ctx.lbl, as.lbl) {
		return nil, 0, ErrLabel
	}
	// Find the covering mapping and copy it out; the syscall linearizes at
	// this point, so a concurrent remapping simply lands before or after it.
	var m mapping
	found := false
	as.mu.RLock()
	for _, cand := range as.mappings {
		if va >= cand.VA && va < cand.VA+cand.NPages*PageSize {
			m = cand
			found = true
			break
		}
	}
	as.mu.RUnlock()
	if !found {
		return nil, 0, ErrNoMapping
	}
	if write && m.Flags&MapWrite == 0 {
		return nil, 0, ErrAccess
	}
	if !write && m.Flags&MapRead == 0 {
		return nil, 0, ErrAccess
	}
	// Thread-local segment mapping: always accessible to its owner.
	if m.Flags&MapThreadLocal != 0 {
		return ctx.t.localSegment, int(va - m.VA), nil
	}
	// Page-fault label checks: read container and segment, plus modify
	// for writes.  Container and segment labels are immutable.
	cont, err := tc.k.lookupContainer(m.Seg.Container)
	if err != nil {
		return nil, 0, err
	}
	if !tc.k.canObserveT(ctx.t, ctx.lbl, cont.lbl) {
		return nil, 0, ErrLabel
	}
	if err := verifyLinkedBrief(cont, m.Seg.Object); err != nil {
		return nil, 0, err
	}
	so, err := tc.k.lookup(m.Seg.Object)
	if err != nil {
		return nil, 0, err
	}
	seg, ok := so.(*segment)
	if !ok {
		return nil, 0, ErrWrongType
	}
	if !tc.k.canObserveT(ctx.t, ctx.lbl, seg.lbl) {
		return nil, 0, ErrLabel
	}
	if write {
		seg.mu.RLock()
		immutable := seg.immutable
		seg.mu.RUnlock()
		if immutable {
			return nil, 0, ErrImmutable
		}
		if !tc.k.leq(ctx.lbl, seg.lbl) {
			return nil, 0, ErrLabel
		}
	}
	return seg, int(uint64(va-m.VA) + m.Offset), nil
}
