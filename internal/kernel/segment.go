package kernel

import (
	"histar/internal/label"
)

// segmentSlack is the extra quota granted to a fresh segment beyond its
// initial size, so small writes do not immediately require quota_move.
const segmentSlack = 16 * 1024

// SegmentCreate creates a segment of initial size nbytes in container d.
// The invoking thread must be able to write d and allocate at label l.
func (tc *ThreadCall) SegmentCreate(d ID, l label.Label, descrip string, nbytes int) (ID, error) {
	ctx, err := tc.enter(scSegmentCreate)
	if err != nil {
		return NilID, err
	}
	if nbytes < 0 {
		return NilID, ErrInvalid
	}
	if !label.ValidObjectLabel(l) {
		return NilID, ErrInvalid
	}
	cont, err := tc.k.lookupContainer(d)
	if err != nil {
		return NilID, err
	}
	if cont.avoidTypes.Has(ObjSegment) {
		return NilID, ErrAvoidType
	}
	if !tc.k.canModifyT(ctx.t, ctx.lbl, cont.lbl) {
		return NilID, ErrLabel
	}
	if !label.CanAllocate(ctx.lbl, ctx.clearance, l) {
		return NilID, ErrLabel
	}
	quota := uint64(nbytes) + segmentSlack
	s := &segment{
		header: header{
			id:      tc.k.newID(),
			objType: ObjSegment,
			lbl:     label.Intern(l),
			quota:   quota,
			descrip: truncDescrip(descrip),
			refs:    1,
		},
		data: make([]byte, nbytes),
	}
	s.usage = s.footprint()
	cont.mu.Lock()
	defer cont.mu.Unlock()
	if !liveLocked(cont) {
		return NilID, ErrNoSuchObject
	}
	if cont.immutable {
		return NilID, ErrImmutable
	}
	if err := tc.k.charge(cont, quota); err != nil {
		return NilID, err
	}
	tc.k.insert(s)
	cont.link(s.id)
	return s.id, nil
}

// SegmentCopy creates a copy of the segment named by src in container d with
// a (possibly different) label l.  Copies are how HiStar avoids re-labeling:
// object labels are immutable after creation, but some objects allow
// efficient copies to be made with different labels (Section 3).  The
// invoking thread must be able to observe the source, write d, and allocate
// at l.
func (tc *ThreadCall) SegmentCopy(src CEnt, d ID, l label.Label, descrip string) (ID, error) {
	ctx, err := tc.enter(scSegmentCopy)
	if err != nil {
		return NilID, err
	}
	if !label.ValidObjectLabel(l) {
		return NilID, ErrInvalid
	}
	srcCont, obj, err := tc.k.peek(ctx, src)
	if err != nil {
		return NilID, err
	}
	seg, ok := obj.(*segment)
	if !ok {
		return NilID, ErrWrongType
	}
	if !tc.k.canObserveT(ctx.t, ctx.lbl, seg.lbl) {
		return NilID, ErrLabel
	}
	cont, err := tc.k.lookupContainer(d)
	if err != nil {
		return NilID, err
	}
	if cont.avoidTypes.Has(ObjSegment) {
		return NilID, ErrAvoidType
	}
	if !tc.k.canModifyT(ctx.t, ctx.lbl, cont.lbl) {
		return NilID, ErrLabel
	}
	if !label.CanAllocate(ctx.lbl, ctx.clearance, l) {
		return NilID, ErrLabel
	}
	ls := lockOrdered(objLock{srcCont, false}, objLock{seg, false}, objLock{cont, true})
	defer ls.unlock()
	if !liveLocked(cont) {
		return NilID, ErrNoSuchObject
	}
	if cont.immutable {
		return NilID, ErrImmutable
	}
	if err := verifyEntryLive(srcCont, seg); err != nil {
		return NilID, err
	}
	quota := uint64(len(seg.data)) + segmentSlack
	if err := tc.k.charge(cont, quota); err != nil {
		return NilID, err
	}
	ns := &segment{
		header: header{
			id:      tc.k.newID(),
			objType: ObjSegment,
			lbl:     label.Intern(l),
			quota:   quota,
			descrip: truncDescrip(descrip),
			refs:    1,
		},
		data: append([]byte(nil), seg.data...),
	}
	ns.usage = ns.footprint()
	tc.k.insert(ns)
	cont.link(ns.id)
	return ns.id, nil
}

// resolveSegment resolves ce to its container and segment with no locks
// held; membership and liveness still need verification under locks.
func (tc *ThreadCall) resolveSegment(ctx tctx, ce CEnt) (*container, *segment, error) {
	cont, obj, err := tc.k.peek(ctx, ce)
	if err != nil {
		return nil, nil, err
	}
	seg, ok := obj.(*segment)
	if !ok {
		return nil, nil, ErrWrongType
	}
	return cont, seg, nil
}

// checkSegmentRead applies the observation rules to a resolved segment: the
// owning thread may always read its thread-local segment, anyone else needs
// LO ⊑ LTᴶ.  Segment labels are immutable, so no lock is required.
func (tc *ThreadCall) checkSegmentRead(ctx tctx, seg *segment) error {
	if seg.threadLocalOwner != NilID && seg.threadLocalOwner == ctx.t.id {
		return nil
	}
	if !tc.k.canObserveT(ctx.t, ctx.lbl, seg.lbl) {
		return ErrLabel
	}
	return nil
}

// checkSegmentWrite applies the modification rules (immutability is checked
// separately, under the segment's lock).
func (tc *ThreadCall) checkSegmentWrite(ctx tctx, seg *segment) error {
	if seg.threadLocalOwner != NilID {
		if seg.threadLocalOwner == ctx.t.id {
			return nil
		}
		return ErrLabel
	}
	if !tc.k.canModifyT(ctx.t, ctx.lbl, seg.lbl) {
		return ErrLabel
	}
	return nil
}

// segReadLocked is SegmentRead's body once the segment's lock is held (any
// mode) and liveness is verified; the ring executes it under a shared lock
// acquisition for a coalesced run of entries.
func segReadLocked(seg *segment, off, n int) ([]byte, error) {
	if off < 0 || n < 0 || off > len(seg.data) {
		return nil, ErrInvalid
	}
	// Clamp without computing off+n, which could overflow int.
	end := len(seg.data)
	if n < end-off {
		end = off + n
	}
	out := make([]byte, end-off)
	copy(out, seg.data[off:end])
	return out, nil
}

// SegmentRead reads n bytes at offset off from the segment named by ce.
func (tc *ThreadCall) SegmentRead(ce CEnt, off, n int) ([]byte, error) {
	ctx, err := tc.enter(scSegmentRead)
	if err != nil {
		return nil, err
	}
	cont, seg, err := tc.resolveSegment(ctx, ce)
	if err != nil {
		return nil, err
	}
	if err := tc.checkSegmentRead(ctx, seg); err != nil {
		return nil, err
	}
	ls := lockOrdered(objLock{cont, false}, objLock{seg, false})
	defer ls.unlock()
	if err := verifyEntryLive(cont, seg); err != nil {
		return nil, err
	}
	return segReadLocked(seg, off, n)
}

// SegmentWrite writes data at offset off in the segment named by ce,
// extending the segment if necessary (subject to its quota).
func (tc *ThreadCall) SegmentWrite(ce CEnt, off int, data []byte) error {
	ctx, err := tc.enter(scSegmentWrite)
	if err != nil {
		return err
	}
	cont, seg, err := tc.resolveSegment(ctx, ce)
	if err != nil {
		return err
	}
	if err := tc.checkSegmentWrite(ctx, seg); err != nil {
		return err
	}
	ls := lockOrdered(objLock{cont, false}, objLock{seg, true})
	defer ls.unlock()
	if err := verifyEntryLive(cont, seg); err != nil {
		return err
	}
	return segWriteLocked(tc.k, seg, off, data)
}

// breakCOWLocked gives the segment a private copy of its data before the
// first mutation after a snapshot or clone froze the slice; the caller holds
// the segment's write lock.  This is the only place snapshot-shared bytes are
// ever duplicated, so the kernel-wide copied-bytes counter lives here.
func (s *segment) breakCOWLocked(k *Kernel) {
	if !s.frozen {
		return
	}
	s.data = append([]byte(nil), s.data...)
	s.noteCOWBreakLocked(k)
}

// noteCOWBreakLocked clears the frozen flag and accounts the bytes that were
// (or are about to be) copied out of the shared array; growth paths that
// already allocate a fresh array call it instead of breakCOWLocked so the
// data is not copied twice.
func (s *segment) noteCOWBreakLocked(k *Kernel) {
	if !s.frozen {
		return
	}
	s.frozen = false
	if k != nil {
		k.snap.cowBreaks.Add(1)
		k.snap.copiedBytes.Add(uint64(len(s.data)))
	}
}

// segWriteLocked is SegmentWrite's body once the segment's write lock is held
// and liveness is verified.
func segWriteLocked(k *Kernel, seg *segment, off int, data []byte) error {
	if seg.immutable {
		return ErrImmutable
	}
	if off < 0 {
		return ErrInvalid
	}
	end := off + len(data)
	if end < off { // int overflow; no quota could ever cover it
		return ErrQuota
	}
	if end > len(seg.data) {
		if uint64(end)+128 > seg.quota {
			return ErrQuota
		}
		seg.noteCOWBreakLocked(k)
		grown := make([]byte, end)
		copy(grown, seg.data)
		seg.data = grown
	} else {
		seg.breakCOWLocked(k)
	}
	copy(seg.data[off:], data)
	seg.usage = seg.footprint()
	seg.bump()
	return nil
}

// SegmentResize sets the segment's length to n bytes.  A file's length is
// defined to be its segment's length (Section 5.1).
func (tc *ThreadCall) SegmentResize(ce CEnt, n int) error {
	ctx, err := tc.enter(scSegmentResize)
	if err != nil {
		return err
	}
	cont, seg, err := tc.resolveSegment(ctx, ce)
	if err != nil {
		return err
	}
	if err := tc.checkSegmentWrite(ctx, seg); err != nil {
		return err
	}
	ls := lockOrdered(objLock{cont, false}, objLock{seg, true})
	defer ls.unlock()
	if err := verifyEntryLive(cont, seg); err != nil {
		return err
	}
	return segResizeLocked(tc.k, seg, n)
}

// segResizeLocked is SegmentResize's body once the segment's write lock is
// held and liveness is verified.
func segResizeLocked(k *Kernel, seg *segment, n int) error {
	if seg.immutable {
		return ErrImmutable
	}
	if n < 0 {
		return ErrInvalid
	}
	if uint64(n)+128 > seg.quota {
		return ErrQuota
	}
	if n <= len(seg.data) {
		// Truncation keeps sharing the frozen array: shrinking mutates no
		// byte, and any later in-place write still breaks the COW first.
		seg.data = seg.data[:n]
	} else {
		seg.noteCOWBreakLocked(k)
		grown := make([]byte, n)
		copy(grown, seg.data)
		seg.data = grown
	}
	seg.usage = seg.footprint()
	seg.bump()
	return nil
}

// SegmentCompareSwap atomically replaces the 8-byte word at offset off with
// next if it currently equals old, reporting whether the swap happened.  It
// models a user-level compare-exchange instruction executed on a mapped
// segment, so it requires the same permissions as a write; the user-level
// library builds its directory and pipe mutexes on it together with the
// futex.
func (tc *ThreadCall) SegmentCompareSwap(ce CEnt, off uint64, old, next uint64) (bool, error) {
	ctx, err := tc.enter(scSegmentCAS)
	if err != nil {
		return false, err
	}
	cont, seg, err := tc.resolveSegment(ctx, ce)
	if err != nil {
		return false, err
	}
	if err := tc.checkSegmentWrite(ctx, seg); err != nil {
		return false, err
	}
	ls := lockOrdered(objLock{cont, false}, objLock{seg, true})
	defer ls.unlock()
	if err := verifyEntryLive(cont, seg); err != nil {
		return false, err
	}
	if seg.immutable {
		return false, ErrImmutable
	}
	if uint64(len(seg.data)) < 8 || off > uint64(len(seg.data))-8 {
		return false, ErrInvalid
	}
	cur := littleEndianU64(seg.data[off:])
	if cur != old {
		return false, nil
	}
	seg.breakCOWLocked(tc.k)
	putLittleEndianU64(seg.data[off:], next)
	seg.bump()
	return true, nil
}

func littleEndianU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLittleEndianU64(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// SegmentLen returns the length of the segment named by ce.
func (tc *ThreadCall) SegmentLen(ce CEnt) (int, error) {
	ctx, err := tc.enter(scSegmentLen)
	if err != nil {
		return 0, err
	}
	cont, seg, err := tc.resolveSegment(ctx, ce)
	if err != nil {
		return 0, err
	}
	if err := tc.checkSegmentRead(ctx, seg); err != nil {
		return 0, err
	}
	ls := lockOrdered(objLock{cont, false}, objLock{seg, false})
	defer ls.unlock()
	if err := verifyEntryLive(cont, seg); err != nil {
		return 0, err
	}
	return len(seg.data), nil
}
