package kernel

import (
	"histar/internal/label"
)

// segmentSlack is the extra quota granted to a fresh segment beyond its
// initial size, so small writes do not immediately require quota_move.
const segmentSlack = 16 * 1024

// SegmentCreate creates a segment of initial size nbytes in container d.
// The invoking thread must be able to write d and allocate at label l.
func (tc *ThreadCall) SegmentCreate(d ID, l label.Label, descrip string, nbytes int) (ID, error) {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return NilID, err
	}
	tc.k.count("segment_create", t)
	if nbytes < 0 {
		return NilID, ErrInvalid
	}
	if !label.ValidObjectLabel(l) {
		return NilID, ErrInvalid
	}
	cont, err := tc.k.lookupContainer(d)
	if err != nil {
		return NilID, err
	}
	if cont.immutable {
		return NilID, ErrImmutable
	}
	if cont.avoidTypes.Has(ObjSegment) {
		return NilID, ErrAvoidType
	}
	if !tc.k.canModify(t.lbl, cont.lbl) {
		return NilID, ErrLabel
	}
	if !label.CanAllocate(t.lbl, t.clearance, l) {
		return NilID, ErrLabel
	}
	quota := uint64(nbytes) + segmentSlack
	if err := tc.k.chargeLocked(cont, quota); err != nil {
		return NilID, err
	}
	s := &segment{
		header: header{
			id:      tc.k.newID(),
			objType: ObjSegment,
			lbl:     label.Intern(l),
			quota:   quota,
			descrip: truncDescrip(descrip),
		},
		data: make([]byte, nbytes),
	}
	s.usage = s.footprint()
	tc.k.objects[s.id] = s
	cont.link(s.id)
	s.refs = 1
	return s.id, nil
}

// SegmentCopy creates a copy of the segment named by src in container d with
// a (possibly different) label l.  Copies are how HiStar avoids re-labeling:
// object labels are immutable after creation, but some objects allow
// efficient copies to be made with different labels (Section 3).  The
// invoking thread must be able to observe the source, write d, and allocate
// at l.
func (tc *ThreadCall) SegmentCopy(src CEnt, d ID, l label.Label, descrip string) (ID, error) {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return NilID, err
	}
	tc.k.count("segment_copy", t)
	if !label.ValidObjectLabel(l) {
		return NilID, ErrInvalid
	}
	obj, err := tc.k.resolve(t.lbl, src)
	if err != nil {
		return NilID, err
	}
	seg, ok := obj.(*segment)
	if !ok {
		return NilID, ErrWrongType
	}
	if !tc.k.canObserve(t.lbl, seg.lbl) {
		return NilID, ErrLabel
	}
	cont, err := tc.k.lookupContainer(d)
	if err != nil {
		return NilID, err
	}
	if cont.immutable {
		return NilID, ErrImmutable
	}
	if cont.avoidTypes.Has(ObjSegment) {
		return NilID, ErrAvoidType
	}
	if !tc.k.canModify(t.lbl, cont.lbl) {
		return NilID, ErrLabel
	}
	if !label.CanAllocate(t.lbl, t.clearance, l) {
		return NilID, ErrLabel
	}
	quota := uint64(len(seg.data)) + segmentSlack
	if err := tc.k.chargeLocked(cont, quota); err != nil {
		return NilID, err
	}
	ns := &segment{
		header: header{
			id:      tc.k.newID(),
			objType: ObjSegment,
			lbl:     label.Intern(l),
			quota:   quota,
			descrip: truncDescrip(descrip),
		},
		data: append([]byte(nil), seg.data...),
	}
	ns.usage = ns.footprint()
	tc.k.objects[ns.id] = ns
	cont.link(ns.id)
	ns.refs = 1
	return ns.id, nil
}

// segmentForRead resolves ce to a segment the invoking thread may observe.
// The kernel lock must be held.
func (tc *ThreadCall) segmentForRead(t *thread, ce CEnt) (*segment, error) {
	obj, err := tc.k.resolve(t.lbl, ce)
	if err != nil {
		return nil, err
	}
	seg, ok := obj.(*segment)
	if !ok {
		return nil, ErrWrongType
	}
	if seg.threadLocalOwner != NilID && seg.threadLocalOwner == t.id {
		return seg, nil
	}
	if !tc.k.canObserve(t.lbl, seg.lbl) {
		return nil, ErrLabel
	}
	return seg, nil
}

// segmentForWrite resolves ce to a segment the invoking thread may modify.
func (tc *ThreadCall) segmentForWrite(t *thread, ce CEnt) (*segment, error) {
	obj, err := tc.k.resolve(t.lbl, ce)
	if err != nil {
		return nil, err
	}
	seg, ok := obj.(*segment)
	if !ok {
		return nil, ErrWrongType
	}
	if seg.immutable {
		return nil, ErrImmutable
	}
	if seg.threadLocalOwner != NilID {
		if seg.threadLocalOwner == t.id {
			return seg, nil
		}
		return nil, ErrLabel
	}
	if !tc.k.canModify(t.lbl, seg.lbl) {
		return nil, ErrLabel
	}
	return seg, nil
}

// SegmentRead reads n bytes at offset off from the segment named by ce.
func (tc *ThreadCall) SegmentRead(ce CEnt, off, n int) ([]byte, error) {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return nil, err
	}
	tc.k.count("segment_read", t)
	seg, err := tc.segmentForRead(t, ce)
	if err != nil {
		return nil, err
	}
	if off < 0 || n < 0 || off > len(seg.data) {
		return nil, ErrInvalid
	}
	end := off + n
	if end > len(seg.data) {
		end = len(seg.data)
	}
	out := make([]byte, end-off)
	copy(out, seg.data[off:end])
	return out, nil
}

// SegmentWrite writes data at offset off in the segment named by ce,
// extending the segment if necessary (subject to its quota).
func (tc *ThreadCall) SegmentWrite(ce CEnt, off int, data []byte) error {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return err
	}
	tc.k.count("segment_write", t)
	seg, err := tc.segmentForWrite(t, ce)
	if err != nil {
		return err
	}
	if off < 0 {
		return ErrInvalid
	}
	end := off + len(data)
	if end > len(seg.data) {
		if uint64(end)+128 > seg.quota {
			return ErrQuota
		}
		grown := make([]byte, end)
		copy(grown, seg.data)
		seg.data = grown
	}
	copy(seg.data[off:], data)
	seg.usage = seg.footprint()
	seg.bump()
	return nil
}

// SegmentResize sets the segment's length to n bytes.  A file's length is
// defined to be its segment's length (Section 5.1).
func (tc *ThreadCall) SegmentResize(ce CEnt, n int) error {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return err
	}
	tc.k.count("segment_resize", t)
	seg, err := tc.segmentForWrite(t, ce)
	if err != nil {
		return err
	}
	if n < 0 {
		return ErrInvalid
	}
	if uint64(n)+128 > seg.quota {
		return ErrQuota
	}
	if n <= len(seg.data) {
		seg.data = seg.data[:n]
	} else {
		grown := make([]byte, n)
		copy(grown, seg.data)
		seg.data = grown
	}
	seg.usage = seg.footprint()
	seg.bump()
	return nil
}

// SegmentCompareSwap atomically replaces the 8-byte word at offset off with
// next if it currently equals old, reporting whether the swap happened.  It
// models a user-level compare-exchange instruction executed on a mapped
// segment, so it requires the same permissions as a write; the user-level
// library builds its directory and pipe mutexes on it together with the
// futex.
func (tc *ThreadCall) SegmentCompareSwap(ce CEnt, off uint64, old, next uint64) (bool, error) {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return false, err
	}
	tc.k.count("segment_cas", t)
	seg, err := tc.segmentForWrite(t, ce)
	if err != nil {
		return false, err
	}
	if off+8 > uint64(len(seg.data)) {
		return false, ErrInvalid
	}
	cur := littleEndianU64(seg.data[off:])
	if cur != old {
		return false, nil
	}
	putLittleEndianU64(seg.data[off:], next)
	seg.bump()
	return true, nil
}

func littleEndianU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLittleEndianU64(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// SegmentLen returns the length of the segment named by ce.
func (tc *ThreadCall) SegmentLen(ce CEnt) (int, error) {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return 0, err
	}
	tc.k.count("segment_len", t)
	seg, err := tc.segmentForRead(t, ce)
	if err != nil {
		return 0, err
	}
	return len(seg.data), nil
}
