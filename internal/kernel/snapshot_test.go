package kernel

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"histar/internal/label"
)

// Snapshot/clone tests: structural fidelity and ID remapping, COW sharing
// semantics and accounting, category remap on clone, label enforcement on
// both capture and materialization, sink validation (rot refuses to clone,
// typed), sink-failure rollback, ring-native OpSnapshot/OpClone, and the
// golden-image acceptance test (≥64 MiB shared, clone ≥50× faster than a
// from-scratch build, bytes copied ≤1% of bytes shared).

// buildSandbox creates a container under parent holding nSegs segments of
// segSize deterministic bytes each plus one sub-container with one more
// segment, returning the sandbox root and the segment IDs.
func buildSandbox(t testing.TB, tc *ThreadCall, parent ID, lbl label.Label, nSegs, segSize int) (ID, []ID) {
	t.Helper()
	sandbox, err := tc.ContainerCreate(parent, lbl, "sandbox", 0, QuotaInfinite)
	if err != nil {
		t.Fatalf("ContainerCreate sandbox: %v", err)
	}
	var segs []ID
	for i := 0; i < nSegs; i++ {
		sid, err := tc.SegmentCreate(sandbox, lbl, fmt.Sprintf("data %d", i), segSize)
		if err != nil {
			t.Fatalf("SegmentCreate: %v", err)
		}
		data := make([]byte, segSize)
		for j := range data {
			data[j] = byte(i + j)
		}
		if err := tc.SegmentWrite(CEnt{sandbox, sid}, 0, data); err != nil {
			t.Fatalf("SegmentWrite: %v", err)
		}
		segs = append(segs, sid)
	}
	sub, err := tc.ContainerCreate(sandbox, lbl, "subdir", 0, uint64(segSize)+128<<10)
	if err != nil {
		t.Fatalf("ContainerCreate subdir: %v", err)
	}
	sid, err := tc.SegmentCreate(sub, lbl, "nested", segSize)
	if err != nil {
		t.Fatalf("SegmentCreate nested: %v", err)
	}
	if err := tc.SegmentWrite(CEnt{sub, sid}, 0, bytes.Repeat([]byte{0xAB}, segSize)); err != nil {
		t.Fatalf("SegmentWrite nested: %v", err)
	}
	segs = append(segs, sid)
	return sandbox, segs
}

func TestSnapshotCloneBasic(t *testing.T) {
	k, tc := boot(t)
	root := k.RootContainer()
	pub := label.New(label.L1)
	sandbox, segs := buildSandbox(t, tc, root, pub, 3, 512)

	info, err := tc.ContainerSnapshot(CEnt{root, sandbox}, "basic")
	if err != nil {
		t.Fatalf("ContainerSnapshot: %v", err)
	}
	// 2 containers + 4 segments.
	if info.Objects != 6 {
		t.Errorf("snapshot objects = %d, want 6", info.Objects)
	}
	if info.Bytes != 4*512 {
		t.Errorf("snapshot bytes = %d, want %d", info.Bytes, 4*512)
	}
	if info.Root != sandbox {
		t.Errorf("snapshot root = %v, want %v", info.Root, sandbox)
	}

	res, err := tc.ContainerClone(info.Lineage, root, nil)
	if err != nil {
		t.Fatalf("ContainerClone: %v", err)
	}
	if res.Objects != 6 {
		t.Errorf("clone objects = %d, want 6", res.Objects)
	}
	if res.SharedBytes != 4*512 {
		t.Errorf("clone shared bytes = %d, want %d", res.SharedBytes, 4*512)
	}
	if res.CopiedBytes != 0 {
		t.Errorf("clone copied bytes = %d, want 0", res.CopiedBytes)
	}
	if res.Root == sandbox {
		t.Error("clone root has the source's ID; want a fresh one")
	}
	for old, nw := range res.IDMap {
		if old == nw {
			t.Errorf("object %v cloned without a fresh ID", old)
		}
	}

	// Cloned data matches the source byte for byte.
	cseg := res.IDMap[segs[0]]
	got, err := tc.SegmentRead(CEnt{res.Root, cseg}, 0, 512)
	if err != nil {
		t.Fatalf("SegmentRead clone: %v", err)
	}
	want, _ := tc.SegmentRead(CEnt{sandbox, segs[0]}, 0, 512)
	if !bytes.Equal(got, want) {
		t.Error("clone segment contents differ from source")
	}

	// COW isolation: writing the clone must not change the source, and the
	// copy must be accounted.
	st0 := k.SnapshotStats()
	if err := tc.SegmentWrite(CEnt{res.Root, cseg}, 0, []byte("clone-write")); err != nil {
		t.Fatalf("SegmentWrite clone: %v", err)
	}
	after, _ := tc.SegmentRead(CEnt{sandbox, segs[0]}, 0, 512)
	if !bytes.Equal(after, want) {
		t.Error("write to clone mutated the source segment")
	}
	st1 := k.SnapshotStats()
	if st1.CowBreaks != st0.CowBreaks+1 {
		t.Errorf("cow breaks = %d, want %d", st1.CowBreaks, st0.CowBreaks+1)
	}
	if st1.CopiedBytes != st0.CopiedBytes+512 {
		t.Errorf("copied bytes = %d, want %d", st1.CopiedBytes, st0.CopiedBytes+512)
	}

	// And the other direction: writing the source must not change a clone.
	if err := tc.SegmentWrite(CEnt{sandbox, segs[1]}, 0, []byte("src-write")); err != nil {
		t.Fatalf("SegmentWrite source: %v", err)
	}
	cdata, _ := tc.SegmentRead(CEnt{res.Root, res.IDMap[segs[1]]}, 0, 9)
	if bytes.Equal(cdata, []byte("src-write")) {
		t.Error("write to source mutated the clone segment")
	}

	if st := k.SnapshotStats(); st.Snapshots < 1 || st.Clones < 1 || st.Registered < 1 {
		t.Errorf("stats = %+v, want >=1 snapshot/clone/registered", st)
	}
}

func TestSnapshotCategoryRemapAndThreadSkip(t *testing.T) {
	k, tc := boot(t)
	root := k.RootContainer()
	cOld, err := tc.CategoryCreateNamed("tmpl")
	if err != nil {
		t.Fatalf("CategoryCreate: %v", err)
	}
	cNew, err := tc.CategoryCreateNamed("user")
	if err != nil {
		t.Fatalf("CategoryCreate: %v", err)
	}
	priv := label.New(label.L1, label.P(cOld, label.L3))
	sandbox, segs := buildSandbox(t, tc, root, priv, 1, 256)

	// A thread inside the subtree must be skipped by the capture.
	if _, err := tc.ThreadCreate(sandbox, ThreadSpec{
		Label:     label.New(label.L1),
		Clearance: label.New(label.L2),
		Descrip:   "resident",
	}); err != nil {
		t.Fatalf("ThreadCreate: %v", err)
	}

	info, err := tc.ContainerSnapshot(CEnt{root, sandbox}, "remap")
	if err != nil {
		t.Fatalf("ContainerSnapshot: %v", err)
	}
	if info.Objects != 4 { // 2 containers + 2 segments, no thread
		t.Errorf("snapshot objects = %d, want 4 (thread must be skipped)", info.Objects)
	}

	res, err := tc.ContainerClone(info.Lineage, root,
		map[label.Category]label.Category{cOld: cNew})
	if err != nil {
		t.Fatalf("ContainerClone: %v", err)
	}
	stat, err := tc.ObjectStat(CEnt{res.Root, res.IDMap[segs[0]]})
	if err != nil {
		t.Fatalf("ObjectStat: %v", err)
	}
	if got := stat.Label.Get(cNew); got != label.L3 {
		t.Errorf("clone label level(cNew) = %v, want L3", got)
	}
	if got := stat.Label.Get(cOld); got != label.L1 {
		t.Errorf("clone label level(cOld) = %v, want default L1 (remapped away)", got)
	}
}

func TestSnapshotCloneLabelEnforcement(t *testing.T) {
	k, tc := boot(t)
	root := k.RootContainer()
	c, err := tc.CategoryCreate()
	if err != nil {
		t.Fatalf("CategoryCreate: %v", err)
	}
	secret := label.New(label.L1, label.P(c, label.L3))
	sandbox, _ := buildSandbox(t, tc, root, secret, 1, 128)

	info, err := tc.ContainerSnapshot(CEnt{root, sandbox}, "secret")
	if err != nil {
		t.Fatalf("owner ContainerSnapshot: %v", err)
	}

	// A thread without c's privilege can neither observe the subtree well
	// enough to snapshot it nor allocate objects at {c3}.
	other, err := k.BootThread(label.New(label.L1), label.New(label.L2), "outsider")
	if err != nil {
		t.Fatalf("BootThread: %v", err)
	}
	if _, err := other.ContainerSnapshot(CEnt{root, sandbox}, "steal"); !errors.Is(err, ErrLabel) {
		t.Errorf("outsider snapshot: err=%v, want ErrLabel", err)
	}
	if _, err := other.ContainerClone(info.Lineage, root, nil); !errors.Is(err, ErrLabel) {
		t.Errorf("outsider clone: err=%v, want ErrLabel", err)
	}
	if _, err := other.ContainerClone(info.Lineage+1, root, nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("clone of unknown lineage: err=%v, want ErrNotFound", err)
	}
}

// fakeSink scripts the persistence hook so sink interaction is testable
// without a store.
type fakeSink struct {
	recorded    int
	cloned      int
	validateErr error
	cloneErr    error
}

func (f *fakeSink) Record(name string, objs []SnapshotObjectData) (uint64, error) {
	f.recorded += len(objs)
	return 777, nil
}
func (f *fakeSink) Validate(sl uint64) error { return f.validateErr }
func (f *fakeSink) Clone(sl uint64, pairs []ClonePair) error {
	if f.cloneErr != nil {
		return f.cloneErr
	}
	f.cloned += len(pairs)
	return nil
}
func (f *fakeSink) Drop(sl uint64) error { return nil }

func TestSnapshotSinkValidationAndRollback(t *testing.T) {
	k, tc := boot(t)
	sink := &fakeSink{}
	k.SetSnapshotSink(sink)
	root := k.RootContainer()
	sandbox, _ := buildSandbox(t, tc, root, label.New(label.L1), 2, 128)

	info, err := tc.ContainerSnapshot(CEnt{root, sandbox}, "sinked")
	if err != nil {
		t.Fatalf("ContainerSnapshot: %v", err)
	}
	if sink.recorded != 3 {
		t.Errorf("sink recorded %d segments, want 3", sink.recorded)
	}
	if info.StoreLineage != 777 {
		t.Errorf("store lineage = %d, want 777", info.StoreLineage)
	}

	if _, err := tc.ContainerClone(info.Lineage, root, nil); err != nil {
		t.Fatalf("clone with healthy sink: %v", err)
	}
	if sink.cloned != 3 {
		t.Errorf("sink cloned %d segments, want 3", sink.cloned)
	}

	// A rotted bundle must refuse to clone with a typed error — never
	// silently share bad bytes.
	sink.validateErr = errors.New("extent crc mismatch")
	if _, err := tc.ContainerClone(info.Lineage, root, nil); !errors.Is(err, ErrCorrupt) {
		t.Errorf("clone of rotted bundle: err=%v, want ErrCorrupt", err)
	}
	sink.validateErr = nil

	// A sink failure during alias recording rolls the published clone back.
	sink.cloneErr = errors.New("store full")
	before := len(tc.mustList(t, root))
	if _, err := tc.ContainerClone(info.Lineage, root, nil); err == nil {
		t.Fatal("clone with failing sink unexpectedly succeeded")
	}
	if after := len(tc.mustList(t, root)); after != before {
		t.Errorf("root has %d entries after failed clone, want %d (rollback)", after, before)
	}
}

// mustList returns the container's entries via ContainerList.
func (tc *ThreadCall) mustList(t *testing.T, ct ID) []ID {
	t.Helper()
	ents, err := tc.ContainerList(Self(ct))
	if err != nil {
		t.Fatalf("ContainerList: %v", err)
	}
	return ents
}

func TestRingSnapshotClone(t *testing.T) {
	k, tc := boot(t)
	root := k.RootContainer()
	sandbox, segs := buildSandbox(t, tc, root, label.New(label.L1), 2, 256)

	ring := tc.NewRing()
	ring.Submit(RingEntry{Op: OpSnapshot, Seg: CEnt{root, sandbox}, Snap: &SnapRequest{Name: "ring"}})
	comps, err := ring.Wait(0)
	if err != nil {
		t.Fatalf("Wait(snapshot): %v", err)
	}
	if comps[0].Err != nil {
		t.Fatalf("OpSnapshot: %v", comps[0].Err)
	}
	lineage := binary.LittleEndian.Uint64(comps[0].Val)
	if comps[0].N != 5 { // 2 containers + 3 segments
		t.Errorf("OpSnapshot N = %d, want 5 objects", comps[0].N)
	}

	// Batch several clones in one Wait — the golden-spawn batching path.
	const nClones = 4
	for i := 0; i < nClones; i++ {
		ring.Submit(RingEntry{Op: OpClone, Snap: &SnapRequest{Lineage: lineage, Dst: root}})
	}
	comps, err = ring.Wait(0)
	if err != nil {
		t.Fatalf("Wait(clones): %v", err)
	}
	roots := make(map[uint64]bool)
	for i := 0; i < nClones; i++ {
		if comps[i].Err != nil {
			t.Fatalf("OpClone %d: %v", i, comps[i].Err)
		}
		r := binary.LittleEndian.Uint64(comps[i].Val)
		if roots[r] {
			t.Errorf("duplicate clone root %d", r)
		}
		roots[r] = true
	}
	// Each clone root is a live container linked under root.
	for r := range roots {
		stat, err := tc.ObjectStat(CEnt{root, ID(r)})
		if err != nil {
			t.Fatalf("ObjectStat clone root: %v", err)
		}
		if stat.Type != ObjContainer {
			t.Errorf("clone root type = %v, want container", stat.Type)
		}
	}
	if sc := k.SyscallCounts(); sc["container_clone"] < nClones || sc["container_snapshot"] < 1 {
		t.Errorf("syscall counts missing snapshot/clone entries: %v", sc)
	}
	_ = segs
}

// TestGoldenImageAcceptance is the issue's acceptance criterion: cloning a
// sandbox with >= 64 MiB of read-only shared data must be O(metadata) —
// at least 50x faster than building the sandbox from scratch — and must
// copy at most 1% of the bytes it shares.
func TestGoldenImageAcceptance(t *testing.T) {
	k, tc := boot(t)
	root := k.RootContainer()
	pub := label.New(label.L1)

	const (
		segSize  = 8 << 20
		nSegs    = 8 // 64 MiB total
		imgBytes = segSize * nSegs
	)
	build := func() (ID, time.Duration) {
		start := time.Now()
		sandbox, err := tc.ContainerCreate(root, pub, "golden", 0, QuotaInfinite)
		if err != nil {
			t.Fatalf("ContainerCreate: %v", err)
		}
		data := make([]byte, segSize)
		for i := 0; i < nSegs; i++ {
			for j := range data {
				data[j] = byte(i + j)
			}
			sid, err := tc.SegmentCreate(sandbox, pub, fmt.Sprintf("blob %d", i), segSize)
			if err != nil {
				t.Fatalf("SegmentCreate: %v", err)
			}
			if err := tc.SegmentWrite(CEnt{sandbox, sid}, 0, data); err != nil {
				t.Fatalf("SegmentWrite: %v", err)
			}
		}
		return sandbox, time.Since(start)
	}

	// From-scratch baseline: build the sandbox twice, keep the faster run.
	_, scratch1 := build()
	golden, scratch2 := build()
	scratch := scratch1
	if scratch2 < scratch {
		scratch = scratch2
	}

	info, err := tc.ContainerSnapshot(CEnt{root, golden}, "acceptance")
	if err != nil {
		t.Fatalf("ContainerSnapshot: %v", err)
	}
	if info.Bytes < 64<<20 {
		t.Fatalf("golden image holds %d bytes, want >= 64 MiB", info.Bytes)
	}

	// Golden spawn: clone a few times, keep the fastest (the comparison is
	// about the mechanism's cost, not scheduler noise).
	var clone time.Duration
	for i := 0; i < 5; i++ {
		start := time.Now()
		res, err := tc.ContainerClone(info.Lineage, root, nil)
		d := time.Since(start)
		if err != nil {
			t.Fatalf("ContainerClone: %v", err)
		}
		if res.SharedBytes != imgBytes {
			t.Fatalf("clone shared %d bytes, want %d", res.SharedBytes, imgBytes)
		}
		if i == 0 || d < clone {
			clone = d
		}
	}

	if clone*50 > scratch {
		t.Errorf("golden clone took %v vs scratch build %v; want >= 50x speedup (got %.1fx)",
			clone, scratch, float64(scratch)/float64(clone))
	}

	st := k.SnapshotStats()
	if st.SharedBytes == 0 {
		t.Fatal("no bytes recorded as shared")
	}
	if st.CopiedBytes*100 > st.SharedBytes {
		t.Errorf("copied %d bytes vs %d shared; want <= 1%%", st.CopiedBytes, st.SharedBytes)
	}
	t.Logf("scratch build %v, golden clone %v (%.0fx), shared %d MiB, copied %d B",
		scratch, clone, float64(scratch)/float64(clone), st.SharedBytes>>20, st.CopiedBytes)
}

func TestSnapshotIdempotentRecapture(t *testing.T) {
	k, tc := boot(t)
	root := k.RootContainer()
	sandbox, _ := buildSandbox(t, tc, root, label.New(label.L1), 1, 64)
	a, err := tc.ContainerSnapshot(CEnt{root, sandbox}, "same")
	if err != nil {
		t.Fatalf("snapshot 1: %v", err)
	}
	b, err := tc.ContainerSnapshot(CEnt{root, sandbox}, "same")
	if err != nil {
		t.Fatalf("snapshot 2: %v", err)
	}
	if a.Lineage != b.Lineage {
		t.Errorf("re-capture changed lineage: %#x vs %#x", a.Lineage, b.Lineage)
	}
	if st := k.SnapshotStats(); st.Registered != 1 {
		t.Errorf("registered = %d, want 1 (idempotent re-capture)", st.Registered)
	}
	if err := k.DropSnapshot(a.Lineage); err != nil {
		t.Fatalf("DropSnapshot: %v", err)
	}
	if err := k.DropSnapshot(a.Lineage); !errors.Is(err, ErrNotFound) {
		t.Errorf("double drop: err=%v, want ErrNotFound", err)
	}
}

// TestSnapshotCloneConcurrentStress is the -race target: concurrent golden
// spawns, COW-breaking writers on earlier clones, and fresh snapshots all
// racing.  Every clone must come out byte-exact against the frozen image no
// matter what the writers do to their own private copies.
func TestSnapshotCloneConcurrentStress(t *testing.T) {
	k, tc := boot(t)
	root := k.RootContainer()
	const (
		nSegs    = 3
		segSize  = 2048
		nWorkers = 8
		nRounds  = 6
	)
	sandbox, _ := buildSandbox(t, tc, root, label.New(label.L1), nSegs, segSize)
	info, err := tc.ContainerSnapshot(CEnt{root, sandbox}, "stress")
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	wantSeg := func(i int) []byte {
		data := make([]byte, segSize)
		for j := range data {
			data[j] = byte(i + j)
		}
		return data
	}

	var wg sync.WaitGroup
	errCh := make(chan error, nWorkers*nRounds)
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < nRounds; round++ {
				dest, err := tc.ContainerCreate(root, label.New(label.L1),
					fmt.Sprintf("stress dest %d-%d", w, round), 0, QuotaInfinite)
				if err != nil {
					errCh <- err
					return
				}
				res, err := tc.ContainerClone(info.Lineage, dest, nil)
				if err != nil {
					errCh <- err
					return
				}
				// Verify every cloned segment against the frozen content,
				// then scribble on one (a COW break racing other clones).
				kids, err := tc.ContainerList(Self(res.Root))
				if err != nil {
					errCh <- err
					return
				}
				seg := 0
				for _, kid := range kids {
					st, err := tc.ObjectStat(CEnt{res.Root, kid})
					if err != nil || st.Type != ObjSegment {
						continue
					}
					got, err := tc.SegmentRead(CEnt{res.Root, kid}, 0, segSize)
					if err != nil {
						errCh <- err
						return
					}
					if !bytes.Equal(got, wantSeg(seg)) {
						errCh <- fmt.Errorf("worker %d round %d: clone segment %d diverged", w, round, seg)
						return
					}
					if seg == w%nSegs {
						if err := tc.SegmentWrite(CEnt{res.Root, kid}, 0,
							bytes.Repeat([]byte{byte(w)}, 64)); err != nil {
							errCh <- err
							return
						}
					}
					seg++
				}
				// Concurrent re-capture of the (immutable) master image.
				if _, err := tc.ContainerSnapshot(CEnt{root, sandbox},
					fmt.Sprintf("stress-re-%d-%d", w, round)); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := k.SnapshotStats()
	if st.Clones != nWorkers*nRounds {
		t.Errorf("clones = %d, want %d", st.Clones, nWorkers*nRounds)
	}
	if st.CowBreaks == 0 || st.CopiedBytes == 0 {
		t.Errorf("stress produced no COW breaks (breaks=%d copied=%d)", st.CowBreaks, st.CopiedBytes)
	}
	// The master image itself must still be pristine.
	for i, id := range func() []ID {
		kids, _ := tc.ContainerList(Self(sandbox))
		var segs []ID
		for _, kid := range kids {
			if s, err := tc.ObjectStat(CEnt{sandbox, kid}); err == nil && s.Type == ObjSegment {
				segs = append(segs, kid)
			}
		}
		return segs
	}() {
		got, err := tc.SegmentRead(CEnt{sandbox, id}, 0, segSize)
		if err != nil || !bytes.Equal(got, wantSeg(i)) {
			t.Fatalf("master segment %d damaged by clone writers: %v", i, err)
		}
	}
}
