package kernel

import "errors"

// Kernel error values.  These correspond to the error returns of the HiStar
// system-call interface; the user-level Unix library translates them into
// errno values.
var (
	// ErrNoSuchObject is returned when an object ID or container entry does
	// not name a live object.
	ErrNoSuchObject = errors.New("kernel: no such object")

	// ErrNotContainer is returned when a container ID names an object of a
	// different type.
	ErrNotContainer = errors.New("kernel: object is not a container")

	// ErrWrongType is returned when an object has an unexpected type.
	ErrWrongType = errors.New("kernel: wrong object type")

	// ErrLabel is returned when an information-flow check fails.  The kernel
	// deliberately reports no more detail than this: explaining *which*
	// category failed could itself leak information.
	ErrLabel = errors.New("kernel: label check failed")

	// ErrClearance is returned when an operation would exceed the invoking
	// thread's clearance.
	ErrClearance = errors.New("kernel: clearance check failed")

	// ErrQuota is returned when an allocation would exceed an object quota.
	ErrQuota = errors.New("kernel: quota exceeded")

	// ErrFixedQuota is returned when attempting to change the quota of an
	// object whose fixed-quota flag is set, or to link an object whose quota
	// is not yet fixed.
	ErrFixedQuota = errors.New("kernel: fixed-quota constraint violated")

	// ErrImmutable is returned when attempting to modify an immutable object.
	ErrImmutable = errors.New("kernel: object is immutable")

	// ErrInvalid is returned for malformed arguments.
	ErrInvalid = errors.New("kernel: invalid argument")

	// ErrAvoidType is returned when creating an object of a type forbidden
	// by an ancestor container's avoid-types mask.
	ErrAvoidType = errors.New("kernel: object type forbidden in this container")

	// ErrHalted is returned when the invoking thread has been halted.
	ErrHalted = errors.New("kernel: thread halted")

	// ErrCorrupt is returned when an object's persistent storage failed
	// integrity verification (bit rot detected by the single-level store);
	// the Unix library translates it into EIO.
	ErrCorrupt = errors.New("kernel: object storage corrupt")

	// ErrNotFound is returned by lookup helpers when a name has no binding.
	ErrNotFound = errors.New("kernel: not found")

	// ErrExists is returned when creating something that already exists.
	ErrExists = errors.New("kernel: already exists")

	// ErrNoMapping is returned by memory accesses that hit no segment
	// mapping; the user-level page-fault handler sees this.
	ErrNoMapping = errors.New("kernel: no address space mapping")

	// ErrAccess is returned when a mapping exists but its flags do not
	// permit the requested access mode.
	ErrAccess = errors.New("kernel: mapping does not permit access")

	// ErrRootContainer is returned when attempting to unreference or
	// deallocate the root container.
	ErrRootContainer = errors.New("kernel: the root container cannot be deallocated")

	// ErrSkipped is the completion error of a ring entry whose chain
	// predecessor failed: the entry was never executed.
	ErrSkipped = errors.New("kernel: ring entry skipped after predecessor error")
)
