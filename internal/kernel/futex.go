package kernel

import (
	"encoding/binary"
	"sync"
)

// IPC support in the HiStar kernel, aside from shared memory and gates, is
// limited to a memory-based futex synchronization primitive (Section 4.1).
// The user-level library builds mutexes, condition variables, and pipes on
// top of it.
//
// The wait-queue table is sharded by 〈segment, offset〉 like the object
// table.  Futex shard locks are leaves that nest inside object locks: a
// waiter holds the segment's read lock while it re-checks the word and
// enqueues itself, so a wake that follows a word update (made under the
// segment's write lock) can never miss the waiter.

type futexKey struct {
	seg    ID
	offset uint64
}

type futexQueue struct {
	waiters []chan struct{}
}

// futexShardCount shards the futex table; futex traffic is far lighter than
// object-table traffic, so a small power of two suffices.
const futexShardCount = 16

type futexShard struct {
	mu sync.Mutex
	m  map[futexKey]*futexQueue
	_  [112]byte // round the struct to 128 bytes so adjacent shards never share a cache line
}

func (k *Kernel) futexShardFor(key futexKey) *futexShard {
	h := (uint64(key.seg) ^ key.offset*0x9e3779b97f4a7c15) * 0x9e3779b97f4a7c15
	return &k.futexes[(h>>32)&(futexShardCount-1)]
}

// FutexWait blocks the invoking thread until FutexWake is called on the same
// 〈segment, offset〉 address, provided the 8-byte word at that offset still
// equals expected; otherwise it returns immediately.  The thread must be
// able to observe the segment.
func (tc *ThreadCall) FutexWait(seg CEnt, offset uint64, expected uint64) error {
	ctx, err := tc.enter(scFutexWait)
	if err != nil {
		return err
	}
	cont, s, err := tc.resolveSegment(ctx, seg)
	if err != nil {
		return err
	}
	if err := tc.checkSegmentRead(ctx, s); err != nil {
		return err
	}
	ls := lockOrdered(objLock{cont, false}, objLock{s, false})
	if err := cont.verifyLinked(s.id); err != nil {
		ls.unlock()
		return err
	}
	if !liveLocked(s) {
		ls.unlock()
		return ErrNoSuchObject
	}
	if uint64(len(s.data)) < 8 || offset > uint64(len(s.data))-8 {
		ls.unlock()
		return ErrInvalid
	}
	cur := binary.LittleEndian.Uint64(s.data[offset:])
	if cur != expected {
		ls.unlock()
		return nil
	}
	// Enqueue while still holding the segment's read lock: any writer that
	// changes the word needs the write lock, so its subsequent FutexWake is
	// guaranteed to see this waiter.
	key := futexKey{seg: s.id, offset: offset}
	fs := tc.k.futexShardFor(key)
	ch := make(chan struct{}, 1)
	fs.mu.Lock()
	q := fs.m[key]
	if q == nil {
		q = &futexQueue{}
		fs.m[key] = q
	}
	q.waiters = append(q.waiters, ch)
	fs.mu.Unlock()
	ls.unlock()
	<-ch
	return nil
}

// FutexWake wakes up to n threads blocked in FutexWait on the same
// 〈segment, offset〉 address and returns how many were woken.  Waking a
// thread conveys information to it, so the invoking thread must be able to
// modify the segment.
func (tc *ThreadCall) FutexWake(seg CEnt, offset uint64, n int) (int, error) {
	ctx, err := tc.enter(scFutexWake)
	if err != nil {
		return 0, err
	}
	cont, s, err := tc.resolveSegment(ctx, seg)
	if err != nil {
		return 0, err
	}
	if err := tc.checkSegmentWrite(ctx, s); err != nil {
		return 0, err
	}
	ls := lockOrdered(objLock{cont, false}, objLock{s, false})
	err = cont.verifyLinked(s.id)
	if err == nil && !liveLocked(s) {
		err = ErrNoSuchObject
	}
	if err == nil && s.immutable {
		err = ErrImmutable
	}
	ls.unlock()
	if err != nil {
		return 0, err
	}
	key := futexKey{seg: s.id, offset: offset}
	fs := tc.k.futexShardFor(key)
	woken := 0
	var toWake []chan struct{}
	fs.mu.Lock()
	if q := fs.m[key]; q != nil {
		for woken < n && len(q.waiters) > 0 {
			toWake = append(toWake, q.waiters[0])
			q.waiters = q.waiters[1:]
			woken++
		}
		if len(q.waiters) == 0 {
			delete(fs.m, key)
		}
	}
	fs.mu.Unlock()
	for _, ch := range toWake {
		ch <- struct{}{}
	}
	return woken, nil
}
