package kernel

import (
	"encoding/binary"
)

// IPC support in the HiStar kernel, aside from shared memory and gates, is
// limited to a memory-based futex synchronization primitive (Section 4.1).
// The user-level library builds mutexes, condition variables, and pipes on
// top of it.

type futexKey struct {
	seg    ID
	offset uint64
}

type futexQueue struct {
	waiters []chan struct{}
}

// FutexWait blocks the invoking thread until FutexWake is called on the same
// 〈segment, offset〉 address, provided the 8-byte word at that offset still
// equals expected; otherwise it returns immediately.  The thread must be
// able to observe the segment.
func (tc *ThreadCall) FutexWait(seg CEnt, offset uint64, expected uint64) error {
	tc.k.mu.Lock()
	t, err := tc.self()
	if err != nil {
		tc.k.mu.Unlock()
		return err
	}
	tc.k.count("futex_wait", t)
	s, err := tc.segmentForRead(t, seg)
	if err != nil {
		tc.k.mu.Unlock()
		return err
	}
	if offset+8 > uint64(len(s.data)) {
		tc.k.mu.Unlock()
		return ErrInvalid
	}
	cur := binary.LittleEndian.Uint64(s.data[offset:])
	if cur != expected {
		tc.k.mu.Unlock()
		return nil
	}
	key := futexKey{seg: s.id, offset: offset}
	q := tc.k.futexes[key]
	if q == nil {
		q = &futexQueue{}
		tc.k.futexes[key] = q
	}
	ch := make(chan struct{}, 1)
	q.waiters = append(q.waiters, ch)
	tc.k.mu.Unlock()
	<-ch
	return nil
}

// FutexWake wakes up to n threads blocked in FutexWait on the same
// 〈segment, offset〉 address and returns how many were woken.  Waking a
// thread conveys information to it, so the invoking thread must be able to
// modify the segment.
func (tc *ThreadCall) FutexWake(seg CEnt, offset uint64, n int) (int, error) {
	tc.k.mu.Lock()
	t, err := tc.self()
	if err != nil {
		tc.k.mu.Unlock()
		return 0, err
	}
	tc.k.count("futex_wake", t)
	s, err := tc.segmentForWrite(t, seg)
	if err != nil {
		tc.k.mu.Unlock()
		return 0, err
	}
	key := futexKey{seg: s.id, offset: offset}
	q := tc.k.futexes[key]
	woken := 0
	var toWake []chan struct{}
	if q != nil {
		for woken < n && len(q.waiters) > 0 {
			toWake = append(toWake, q.waiters[0])
			q.waiters = q.waiters[1:]
			woken++
		}
		if len(q.waiters) == 0 {
			delete(tc.k.futexes, key)
		}
	}
	tc.k.mu.Unlock()
	for _, ch := range toWake {
		ch <- struct{}{}
	}
	return woken, nil
}
