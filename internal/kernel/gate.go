package kernel

import (
	"sync"

	"histar/internal/label"
)

// GateSpec describes a gate to be created.
type GateSpec struct {
	// Label is the gate label LG; it may contain ⋆, which is how privilege
	// is stored in a gate for later transfer.
	Label label.Label
	// Clearance is the gate clearance CG; a thread may invoke the gate only
	// if its label is below CG, so clearances gate who may call.
	Clearance label.Label
	// AddressSpace is the address space the entering thread switches to.
	AddressSpace CEnt
	// Entry is the entry point function.
	Entry GateEntry
	// Closure is fixed data passed to every invocation (the paper's closure
	// arguments, e.g. the object ID of the retry-count segment).
	Closure []byte
	// Descrip is the descriptive string.
	Descrip string
}

// GateCreate creates a gate in container d (Section 3.5).  A thread T′ can
// only allocate a gate G whose label and clearance satisfy
// LT′ ⊑ LG ⊑ CG ⊑ CT′.
func (tc *ThreadCall) GateCreate(d ID, spec GateSpec) (ID, error) {
	ctx, err := tc.enter(scGateCreate)
	if err != nil {
		return NilID, err
	}
	if spec.Entry == nil {
		return NilID, ErrInvalid
	}
	if !label.ValidThreadLabel(spec.Label) {
		return NilID, ErrInvalid
	}
	cont, err := tc.k.lookupContainer(d)
	if err != nil {
		return NilID, err
	}
	if cont.avoidTypes.Has(ObjGate) {
		return NilID, ErrAvoidType
	}
	if !tc.k.canModifyT(ctx.t, ctx.lbl, cont.lbl) {
		return NilID, ErrLabel
	}
	// The creator cannot mint privilege it does not have (LT′ ⊑ LG) and the
	// gate's label and clearance are bounded by the creator's clearance
	// (LG ⊑ CT′ and CG ⊑ CT′).  The paper states the rule as
	// LT′ ⊑ LG ⊑ CG ⊑ CT′, but its own Figure 10 grant gate — label
	// {ur⋆, uw⋆, 1} with clearance {x0, 2} — has LG(x)=1 > CG(x)=0, so the
	// LG ⊑ CG conjunct cannot be meant literally; gate clearances are purely
	// a bound on callers (LT ⊑ CG at invocation), which the remaining
	// conjuncts preserve.
	if !tc.k.leq(ctx.lbl, spec.Label) ||
		!tc.k.leq(spec.Label.LowerStar(), ctx.clearance) ||
		!tc.k.leq(spec.Clearance, ctx.clearance) {
		return NilID, ErrLabel
	}
	const quota = 8 * 1024
	g := &gate{
		header: header{
			id:      tc.k.newID(),
			objType: ObjGate,
			// The externally visible object label strips ownership so that
			// possession of the gate's container entry does not reveal what
			// the gate can untaint.
			lbl:     label.Intern(spec.Label.LowerStar()),
			quota:   quota,
			descrip: truncDescrip(spec.Descrip),
			refs:    1,
		},
		gateLabel:    label.Intern(spec.Label),
		clearance:    label.Intern(spec.Clearance),
		addressSpace: spec.AddressSpace,
		entry:        spec.Entry,
		closureArgs:  append([]byte(nil), spec.Closure...),
	}
	g.usage = g.footprint()
	cont.mu.Lock()
	defer cont.mu.Unlock()
	if !liveLocked(cont) {
		return NilID, ErrNoSuchObject
	}
	if cont.immutable {
		return NilID, ErrImmutable
	}
	if err := tc.k.charge(cont, quota); err != nil {
		return NilID, err
	}
	tc.k.insert(g)
	cont.link(g.id)
	return g.id, nil
}

// GateRequest bundles the labels a thread supplies when invoking a gate.
type GateRequest struct {
	// Label is the requested label LR the thread acquires on entry.
	Label label.Label
	// Clearance is the requested clearance CR acquired on entry.
	Clearance label.Label
	// Verify is the verify label LV, proving possession of categories
	// without granting them across the call; entry code may inspect it.
	Verify label.Label
	// Args is the call payload (conventionally staged in the thread-local
	// segment; passed directly here for convenience).
	Args []byte
}

// GateEnter invokes the gate named by ce.  The checks of Section 3.5 apply:
//
//	LT ⊑ CG,  LT ⊑ LV,  (LTᴶ ⊔ LGᴶ)⋆ ⊑ LR ⊑ CR ⊑ (CT ⊔ CG)
//
// On success the invoking thread's label and clearance become LR and CR, its
// address space becomes the gate's, and the gate's entry point runs on the
// invoking thread (gates have no implicit return — services that want to
// return privilege to the caller use an explicitly created return gate, as
// the user-level library's gate-call convention does).  The entry point's
// result bytes are returned to the invoker for convenience.
func (tc *ThreadCall) GateEnter(ce CEnt, req GateRequest) ([]byte, error) {
	ctx, err := tc.enter(scGateEnter)
	if err != nil {
		return nil, err
	}
	g, err := tc.resolveGate(ctx, ce)
	if err != nil {
		return nil, err
	}
	if err := tc.gateEnterTransfer(ctx.t, g, req); err != nil {
		return nil, err
	}
	return tc.gateDispatch(g, req), nil
}

// resolveGate resolves a container entry to a live gate without taking any
// object locks (peek's container read lock excepted).
func (tc *ThreadCall) resolveGate(ctx tctx, ce CEnt) (*gate, error) {
	_, obj, err := tc.k.peek(ctx, ce)
	if err != nil {
		return nil, err
	}
	g, ok := obj.(*gate)
	if !ok {
		return nil, ErrWrongType
	}
	return g, nil
}

// gateEnterTransfer performs the label checks of Section 3.5 and, if they
// pass, retargets thread t to the requested label/clearance and the gate's
// address space.  The checks compare the thread's label against the
// (immutable) gate, so they run under the thread's write lock, against the
// label as it is now: a concurrent self_set_label or ownership grant must
// either land before the checks or after the transfer, never be overwritten
// by it.  The label cache is a leaf and may be consulted under the lock.
func (tc *ThreadCall) gateEnterTransfer(t *thread, g *gate, req GateRequest) error {
	if !label.ValidThreadLabel(req.Label) || !label.ValidClearance(req.Clearance) {
		return ErrInvalid
	}
	ls := lockOrdered(objLock{t, true}, objLock{t.localSegment, true})
	gerr := func() error {
		if t.halted {
			return ErrHalted
		}
		// LT ⊑ CG: the gate's clearance bounds who may call it.
		if !tc.k.leq(t.lbl, g.clearance) {
			return ErrClearance
		}
		// LT ⊑ LV: the verify label may only claim ownership the thread
		// has.
		if !tc.k.leq(t.lbl, req.Verify) {
			return ErrLabel
		}
		// (LTᴶ ⊔ LGᴶ)⋆ ⊑ LR: the requested label must carry at least the
		// taint of both the thread and the gate (ownership from either may
		// appear).  GateMinLeq compares pointwise without materializing the
		// join, keeping the steady-state gate call allocation-free.
		if !label.GateMinLeq(t.lbl, g.gateLabel, req.Label) {
			return ErrLabel
		}
		// LR ⊑ CR ⊑ (CT ⊔ CG).  CR below either bound is below the join, so
		// the common cases (a caller keeping its own clearance, or asking for
		// the gate's) never materialize CT ⊔ CG; only the mixed case pays the
		// join's allocation.
		if !tc.k.leq(req.Label, req.Clearance) {
			return ErrClearance
		}
		if !tc.k.leq(req.Clearance, t.clearance) && !tc.k.leq(req.Clearance, g.clearance) &&
			!tc.k.leq(req.Clearance, t.clearance.Join(g.clearance)) {
			return ErrClearance
		}
		// Perform the transfer: the thread now runs with LR/CR in the
		// gate's address space.
		t.lbl = label.Intern(req.Label)
		t.clearance = label.Intern(req.Clearance)
		if g.addressSpace.Object != NilID {
			t.addressSpace = g.addressSpace
		}
		t.localSegment.lbl = label.Intern(req.Label.LowerStar())
		t.bump()
		return nil
	}()
	ls.unlock()
	return gerr
}

// gateCtxPool recycles GateCallCtx allocations across gate calls; see the
// lifetime note on GateCallCtx.
var gateCtxPool = sync.Pool{New: func() any { return new(GateCallCtx) }}

// gateDispatch runs the gate's entry point on the invoking thread with no
// kernel locks held.  The closure slice is passed as-is: closures are
// immutable after GateCreate (which made its own copy), so there is no
// per-call copy.
func (tc *ThreadCall) gateDispatch(g *gate, req GateRequest) []byte {
	call := gateCtxPool.Get().(*GateCallCtx)
	*call = GateCallCtx{
		TC:      tc,
		Verify:  req.Verify,
		Args:    req.Args,
		Closure: g.closureArgs,
	}
	result := g.entry(call)
	*call = GateCallCtx{}
	gateCtxPool.Put(call)
	return result
}

// GateStat describes a gate's externally visible state.
type GateStat struct {
	ID        ID
	Label     label.Label // ownership stripped
	Clearance label.Label
	Descrip   string
}

// GateStat returns the externally visible state of the gate named by ce.
func (tc *ThreadCall) GateStat(ce CEnt) (GateStat, error) {
	ctx, err := tc.enter(scGateStat)
	if err != nil {
		return GateStat{}, err
	}
	_, obj, err := tc.k.peek(ctx, ce)
	if err != nil {
		return GateStat{}, err
	}
	g, ok := obj.(*gate)
	if !ok {
		return GateStat{}, ErrWrongType
	}
	return GateStat{ID: g.id, Label: g.lbl, Clearance: g.clearance, Descrip: g.descrip}, nil
}
