package kernel

import (
	"fmt"
	"sync/atomic"

	"histar/internal/label"
)

// Container snapshot/clone: O(metadata) sandbox creation.
//
// ContainerSnapshot captures an immutable image of a container subtree —
// containers, segments, gates, and address spaces, with their labels,
// quotas, and metadata — identified by a lineage hash over the captured
// state.  Segment contents are captured BY REFERENCE: the source segment's
// data slice is frozen (copy-on-write) at capture time, so a snapshot of a
// 64 MiB sandbox costs a subtree walk, not a 64 MiB copy.
//
// ContainerClone materializes a snapshot as a fresh subtree under a
// destination container: every object gets a fresh ID (internal references —
// container entries, address-space mappings, gate address spaces — are
// remapped), labels are rewritten through a caller-supplied category remap
// (how a golden image baked with a template user's categories becomes one
// user's private sandbox), and cloned segments share the frozen data slices
// COW until first write.  The clone takes object locks only on the
// destination container, so spawning a sandbox is O(metadata) regardless of
// how many bytes the image carries.
//
// When the boot environment attaches a SnapshotSink (the single-level
// store's bundle layer), snapshots are persisted as refcounted bundles and
// clones as store-side aliases, and every clone first validates the bundle's
// lineage — a clone of a bundle whose shared extent has rotted fails with a
// typed error instead of silently sharing bad bytes.
//
// Threads and devices are skipped by the walk: a snapshot is a passive image
// (programs, file data, directory segments), and golden images are baked
// quiescent.  Thread-local segments never appear in containers, so they are
// never captured.

// SnapshotObjectData is one captured segment handed to the SnapshotSink:
// the object's kernel ID, its (frozen, shared) contents, and its label.
type SnapshotObjectData struct {
	ID    uint64
	Data  []byte
	Label label.Label
}

// ClonePair maps one snapshotted segment to its clone for the sink's alias
// records, together with the label the clone was given.
type ClonePair struct {
	SrcID, DstID uint64
	Label        label.Label
}

// SnapshotSink is the persistence hook for container snapshots, implemented
// by the boot environment over the single-level store's bundle layer (the
// same pattern as the ring's Syncer and SetIntegritySource).  The kernel
// itself stays storage-agnostic.
type SnapshotSink interface {
	// Record persists the captured segments as a refcounted bundle and
	// returns the store-side lineage.
	Record(name string, objs []SnapshotObjectData) (uint64, error)
	// Validate checks that every extent the bundle pins still verifies;
	// a rotted bundle returns the store's typed corruption error.
	Validate(storeLineage uint64) error
	// Clone records store-side aliases for a clone's segments, sharing the
	// bundle's extents without copying.
	Clone(storeLineage uint64, pairs []ClonePair) error
	// Drop releases the bundle's pins when the snapshot is deleted.
	Drop(storeLineage uint64) error
}

// SetSnapshotSink attaches the snapshot persistence hook; call before the
// kernel is shared between threads.
func (k *Kernel) SetSnapshotSink(sink SnapshotSink) {
	k.snapMu.Lock()
	k.snapSink = sink
	k.snapMu.Unlock()
}

// snapObject is one captured object image.  Everything is immutable after
// capture; data aliases the frozen source slice.
type snapObject struct {
	id         ID
	typ        ObjectType
	lbl        label.Label
	quota      uint64
	fixedQuota bool
	immutable  bool
	descrip    string
	metadata   [MetadataSize]byte

	children   []ID     // container: child IDs in insertion order
	avoidTypes TypeMask // container

	data []byte // segment: frozen, shared

	gateLabel label.Label // gate
	gateClr   label.Label
	gateAS    CEnt
	entry     GateEntry
	closure   []byte

	mappings []mapping // address space
}

// Snapshot is one registered container snapshot.
type Snapshot struct {
	lineage      uint64
	storeLineage uint64 // 0 when no sink is attached
	name         string
	root         ID
	objs         map[ID]*snapObject
	order        []ID // walk order, root first (parents before children)
	bytes        uint64
}

// SnapshotInfo is a snapshot's externally visible description.
type SnapshotInfo struct {
	// Lineage identifies the snapshot; clones name it.
	Lineage uint64
	// StoreLineage is the persisted bundle's lineage (0 if none).
	StoreLineage uint64
	Name         string
	// Root is the ID the snapshotted subtree's root container had.
	Root ID
	// Objects counts captured objects; Bytes their total segment data.
	Objects int
	Bytes   uint64
}

// CloneResult describes one materialized clone.
type CloneResult struct {
	// Root is the fresh ID of the cloned subtree's root container.
	Root ID
	// Objects counts cloned objects.
	Objects int
	// SharedBytes is segment data shared COW with the snapshot;
	// CopiedBytes is what the clone itself duplicated (always 0 — copies
	// happen lazily, at first write, and show up in SnapshotStats).
	SharedBytes uint64
	CopiedBytes uint64
	// IDMap maps snapshotted object IDs to their clones' fresh IDs.
	IDMap map[ID]ID
}

// snapCounters tallies kernel-wide snapshot/clone activity.
type snapCounters struct {
	snapshots   atomic.Uint64
	clones      atomic.Uint64
	sharedBytes atomic.Uint64
	copiedBytes atomic.Uint64
	cowBreaks   atomic.Uint64
}

// SnapshotStats is a snapshot of the kernel-wide snapshot/clone counters.
type SnapshotStats struct {
	// Snapshots and Clones count successful captures and materializations.
	Snapshots uint64
	Clones    uint64
	// SharedBytes is the total segment data clones attached COW;
	// CopiedBytes the data actually duplicated by first writes
	// (CowBreaks counts those events).  SharedBytes/CopiedBytes is the
	// sharing ratio the golden-spawn fast-path exists for.
	SharedBytes uint64
	CopiedBytes uint64
	CowBreaks   uint64
	// Registered is the number of live snapshots.
	Registered int
}

// SnapshotStats returns the kernel-wide snapshot/clone counters.
func (k *Kernel) SnapshotStats() SnapshotStats {
	k.snapMu.Lock()
	n := len(k.snapshots)
	k.snapMu.Unlock()
	return SnapshotStats{
		Snapshots:   k.snap.snapshots.Load(),
		Clones:      k.snap.clones.Load(),
		SharedBytes: k.snap.sharedBytes.Load(),
		CopiedBytes: k.snap.copiedBytes.Load(),
		CowBreaks:   k.snap.cowBreaks.Load(),
		Registered:  n,
	}
}

// Snapshots lists the registered snapshots.
func (k *Kernel) Snapshots() []SnapshotInfo {
	k.snapMu.Lock()
	defer k.snapMu.Unlock()
	out := make([]SnapshotInfo, 0, len(k.snapshots))
	for _, s := range k.snapshots {
		out = append(out, s.info())
	}
	return out
}

// SnapshotByLineage returns the registered snapshot with the given lineage.
func (k *Kernel) SnapshotByLineage(lineage uint64) (SnapshotInfo, bool) {
	k.snapMu.Lock()
	defer k.snapMu.Unlock()
	s, ok := k.snapshots[lineage]
	if !ok {
		return SnapshotInfo{}, false
	}
	return s.info(), true
}

func (s *Snapshot) info() SnapshotInfo {
	return SnapshotInfo{
		Lineage:      s.lineage,
		StoreLineage: s.storeLineage,
		Name:         s.name,
		Root:         s.root,
		Objects:      len(s.order),
		Bytes:        s.bytes,
	}
}

// DropSnapshot unregisters a snapshot and releases its store bundle.  Live
// clones are unaffected: their frozen slices keep the shared data alive and
// their store aliases keep the shared extents referenced.
func (k *Kernel) DropSnapshot(lineage uint64) error {
	k.snapMu.Lock()
	s, ok := k.snapshots[lineage]
	if ok {
		delete(k.snapshots, lineage)
	}
	sink := k.snapSink
	k.snapMu.Unlock()
	if !ok {
		return ErrNotFound
	}
	if sink != nil && s.storeLineage != 0 {
		return sink.Drop(s.storeLineage)
	}
	return nil
}

// snapLineage hashes a snapshot's identity-relevant state (FNV-1a): the
// name, the walk order, and each object's type, size, and label.  Object IDs
// are included, so re-snapshotting the same subtree yields the same lineage
// while snapshots of distinct subtrees never collide in practice.
func snapLineage(name string, order []ID, objs map[ID]*snapObject) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime
	}
	for _, id := range order {
		o := objs[id]
		mix(uint64(o.id))
		mix(uint64(o.typ))
		mix(uint64(len(o.data)))
		for _, b := range o.lbl.AppendBinary(nil) {
			h ^= uint64(b)
			h *= prime
		}
	}
	if h == 0 {
		h = 1
	}
	return h
}

// ContainerSnapshot captures the subtree rooted at the container named by ce
// into a registered snapshot (container_snapshot).  The invoking thread must
// be able to observe every captured object; threads and devices in the
// subtree are skipped.  Segment data is shared COW from this moment on.
// When a persistence sink is attached, the captured segments are recorded as
// a store bundle and the snapshot is durable across remounts of the store.
func (tc *ThreadCall) ContainerSnapshot(ce CEnt, name string) (SnapshotInfo, error) {
	ctx, err := tc.enter(scContainerSnapshot)
	if err != nil {
		return SnapshotInfo{}, err
	}
	return tc.containerSnapshotCtx(ctx, ce, name)
}

// containerSnapshotCtx is ContainerSnapshot's body after syscall entry; the
// ring's OpSnapshot dispatch calls it with the batch's thread snapshot.
func (tc *ThreadCall) containerSnapshotCtx(ctx tctx, ce CEnt, name string) (SnapshotInfo, error) {
	k := tc.k
	_, obj, err := k.peek(ctx, ce)
	if err != nil {
		return SnapshotInfo{}, err
	}
	root, ok := obj.(*container)
	if !ok {
		return SnapshotInfo{}, ErrNotContainer
	}

	// Walk the subtree breadth-first, locking ONE object at a time (read
	// locks for metadata, a write lock on segments to set the frozen flag),
	// so the walk adds no multi-object lock acquisitions to the discipline.
	// The subtree must be quiescent for a perfectly consistent image — the
	// golden-image workflow bakes images before any clone runs — but the
	// walk itself is safe against concurrent mutation: each object's capture
	// is atomic under its own lock.
	objs := make(map[ID]*snapObject)
	var order []ID
	var bytes uint64
	queue := []ID{root.id}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		if _, seen := objs[id]; seen {
			continue
		}
		o, err := k.lookup(id)
		if err != nil {
			if id == root.id {
				return SnapshotInfo{}, err
			}
			continue // unlinked during the walk
		}
		h := o.hdr()
		if h.objType == ObjThread || h.objType == ObjDevice {
			continue
		}
		so := &snapObject{id: id, typ: h.objType}
		seg, isSeg := o.(*segment)
		if isSeg {
			h.mu.Lock()
		} else {
			h.mu.RLock()
		}
		live := !h.dead.Load()
		if live {
			so.lbl = h.lbl
			so.quota = h.quota
			so.fixedQuota = h.fixedQuota
			so.immutable = h.immutable
			so.descrip = h.descrip
			so.metadata = h.metadata
			switch v := o.(type) {
			case *container:
				so.children = v.list()
				so.avoidTypes = v.avoidTypes
			case *segment:
				seg.frozen = true
				so.data = seg.data
			case *gate:
				so.gateLabel = v.gateLabel
				so.gateClr = v.clearance
				so.gateAS = v.addressSpace
				so.entry = v.entry
				so.closure = v.closureArgs
			case *addressSpace:
				so.mappings = append([]mapping(nil), v.mappings...)
			}
		}
		if isSeg {
			h.mu.Unlock()
		} else {
			h.mu.RUnlock()
		}
		if !live {
			if id == root.id {
				return SnapshotInfo{}, ErrNoSuchObject
			}
			continue
		}
		// Labels of non-thread objects are immutable; the check needs no
		// lock and failing it fails the snapshot — a subtree image with
		// holes would clone incompletely and silently.
		if !k.canObserveT(ctx.t, ctx.lbl, so.lbl) {
			return SnapshotInfo{}, ErrLabel
		}
		objs[id] = so
		order = append(order, id)
		bytes += uint64(len(so.data))
		queue = append(queue, so.children...)
	}

	snap := &Snapshot{
		name:  name,
		root:  root.id,
		objs:  objs,
		order: order,
		bytes: bytes,
	}
	snap.lineage = snapLineage(name, order, objs)

	k.snapMu.Lock()
	if existing, ok := k.snapshots[snap.lineage]; ok {
		// Identical re-capture (same subtree, same state): idempotent.
		info := existing.info()
		k.snapMu.Unlock()
		return info, nil
	}
	sink := k.snapSink
	k.snapMu.Unlock()

	if sink != nil {
		var sobjs []SnapshotObjectData
		for _, id := range order {
			o := objs[id]
			if o.typ == ObjSegment {
				sobjs = append(sobjs, SnapshotObjectData{ID: uint64(id), Data: o.data, Label: o.lbl})
			}
		}
		sl, err := sink.Record(name, sobjs)
		if err != nil {
			return SnapshotInfo{}, fmt.Errorf("kernel: persisting snapshot bundle: %w", err)
		}
		snap.storeLineage = sl
	}

	k.snapMu.Lock()
	if existing, ok := k.snapshots[snap.lineage]; ok {
		info := existing.info()
		k.snapMu.Unlock()
		return info, nil
	}
	k.snapshots[snap.lineage] = snap
	k.snapMu.Unlock()
	k.snap.snapshots.Add(1)
	return snap.info(), nil
}

// remapLabel rewrites a label's categories through remap.  Pairs() returns a
// copy, so the source (possibly interned) label is never mutated.
func remapLabel(l label.Label, remap map[label.Category]label.Category) label.Label {
	if len(remap) == 0 || l.NumExplicit() == 0 {
		return l
	}
	pairs := l.Pairs()
	changed := false
	for i := range pairs {
		if nc, ok := remap[pairs[i].Category]; ok {
			pairs[i].Category = nc
			changed = true
		}
	}
	if !changed {
		return l
	}
	return label.New(l.Default(), pairs...)
}

// ContainerClone materializes the snapshot with the given lineage as a fresh
// subtree linked into container dst (container_clone).  Every object gets a
// fresh ID; labels are rewritten through remap (template-user categories →
// this clone's user), and the invoking thread must be able to allocate at
// every rewritten label and to write dst.  Cloned segments share the
// snapshot's data COW — the call copies no segment bytes.  With a
// persistence sink attached the bundle's lineage is validated first (a
// rotted shared extent fails the clone with the store's typed error) and the
// clone's segments are recorded as store-side aliases.
func (tc *ThreadCall) ContainerClone(lineage uint64, dst ID, remap map[label.Category]label.Category) (CloneResult, error) {
	ctx, err := tc.enter(scContainerClone)
	if err != nil {
		return CloneResult{}, err
	}
	return tc.containerCloneCtx(ctx, lineage, dst, remap)
}

// containerCloneCtx is ContainerClone's body after syscall entry; the ring's
// OpClone dispatch calls it with the batch's thread snapshot.
func (tc *ThreadCall) containerCloneCtx(ctx tctx, lineage uint64, dst ID, remap map[label.Category]label.Category) (CloneResult, error) {
	k := tc.k
	k.snapMu.Lock()
	snap, ok := k.snapshots[lineage]
	sink := k.snapSink
	k.snapMu.Unlock()
	if !ok {
		return CloneResult{}, ErrNotFound
	}
	if sink != nil && snap.storeLineage != 0 {
		// Never silently share rotted bytes: a bundle whose extents fail
		// verification refuses to clone.  The store's typed error
		// (ErrQuarantined / ErrCorrupt) is preserved in the chain.
		if err := sink.Validate(snap.storeLineage); err != nil {
			return CloneResult{}, fmt.Errorf("%w: snapshot %#x failed bundle validation: %w", ErrCorrupt, lineage, err)
		}
	}
	dest, err := k.lookupContainer(dst)
	if err != nil {
		return CloneResult{}, err
	}
	if !k.canModifyT(ctx.t, ctx.lbl, dest.lbl) {
		return CloneResult{}, ErrLabel
	}

	// Phase 1, no locks: allocate fresh IDs and validate every rewritten
	// label against the invoking thread's privileges.
	idMap := make(map[ID]ID, len(snap.order))
	for _, id := range snap.order {
		idMap[id] = k.newID()
	}
	remapCE := func(ce CEnt) CEnt {
		if n, ok := idMap[ce.Container]; ok {
			ce.Container = n
		}
		if n, ok := idMap[ce.Object]; ok {
			ce.Object = n
		}
		return ce
	}
	labels := make(map[ID]label.Label, len(snap.order))
	for _, id := range snap.order {
		so := snap.objs[id]
		nl := remapLabel(so.lbl, remap)
		if dest.avoidTypes.Has(so.typ) {
			return CloneResult{}, ErrAvoidType
		}
		if !label.CanAllocate(ctx.lbl, ctx.clearance, nl) {
			return CloneResult{}, ErrLabel
		}
		labels[id] = nl
		if so.typ == ObjGate {
			// Same bounds GateCreate enforces for the rewritten gate label.
			gl := remapLabel(so.gateLabel, remap)
			if !k.leq(ctx.lbl, gl) || !k.leq(gl.LowerStar(), ctx.clearance) ||
				!k.leq(remapLabel(so.gateClr, remap), ctx.clearance) {
				return CloneResult{}, ErrLabel
			}
		}
	}

	// Phase 2, still no locks: build the whole subtree as unpublished
	// objects.  Nothing can reach them until they are inserted, so no
	// object locks are needed; internal references go through idMap.
	// refCount reproduces hard-link structure: an object linked from two
	// snapshotted containers keeps two links in the clone.  parentOf maps
	// each snapshotted container to its snapshotted parent (walk order puts
	// parents first, so the first link wins, matching the walk).
	refCount := make(map[ID]int, len(snap.order))
	parentOf := make(map[ID]ID, len(snap.order))
	for _, id := range snap.order {
		so := snap.objs[id]
		for _, child := range so.children {
			if _, ok := idMap[child]; !ok {
				continue
			}
			refCount[child]++
			if _, ok := parentOf[child]; !ok {
				parentOf[child] = id
			}
		}
	}
	refCount[snap.root]++ // the link dest will hold
	var built []object
	var shared uint64
	rootQuota := snap.objs[snap.root].quota
	for _, id := range snap.order {
		so := snap.objs[id]
		var o object
		var childQuota uint64
		switch so.typ {
		case ObjContainer:
			nc := &container{entries: make(map[ID]bool), avoidTypes: so.avoidTypes}
			if id == snap.root {
				nc.parent = dst
			} else {
				nc.parent = idMap[parentOf[id]]
			}
			for _, child := range so.children {
				nid, ok := idMap[child]
				if !ok {
					continue // skipped (thread/device) or unlinked mid-walk
				}
				nc.link(nid)
				// Reproduce the charge the child's creation made against
				// this container, so quota accounting inside the clone
				// matches a from-scratch build.
				childQuota += snap.objs[child].quota
			}
			o = nc
		case ObjSegment:
			ns := &segment{data: so.data, frozen: true}
			shared += uint64(len(so.data))
			o = ns
		case ObjGate:
			o = &gate{
				gateLabel:    label.Intern(remapLabel(so.gateLabel, remap)),
				clearance:    label.Intern(remapLabel(so.gateClr, remap)),
				addressSpace: remapCE(so.gateAS),
				entry:        so.entry,
				closureArgs:  so.closure,
			}
		case ObjAddressSpace:
			na := &addressSpace{}
			for _, m := range so.mappings {
				m.Seg = remapCE(m.Seg)
				na.mappings = append(na.mappings, m)
			}
			o = na
		default:
			continue
		}
		h := o.hdr()
		h.id = idMap[id]
		h.objType = so.typ
		h.lbl = label.Intern(labels[id])
		h.quota = so.quota
		h.fixedQuota = so.fixedQuota
		h.immutable = so.immutable
		h.descrip = so.descrip
		h.metadata = so.metadata
		h.refs = refCount[id]
		h.usage = o.footprint() + childQuota
		built = append(built, o)
	}

	// Phase 3: publish under the destination container's lock — the only
	// multi-object-visible step, and the only lock the clone holds.
	dest.mu.Lock()
	if !liveLocked(dest) {
		dest.mu.Unlock()
		return CloneResult{}, ErrNoSuchObject
	}
	if dest.immutable {
		dest.mu.Unlock()
		return CloneResult{}, ErrImmutable
	}
	if err := k.charge(dest, rootQuota); err != nil {
		dest.mu.Unlock()
		return CloneResult{}, err
	}
	for _, o := range built {
		k.insert(o)
	}
	dest.link(idMap[snap.root])
	dest.mu.Unlock()

	// Phase 4: store-side aliases, no kernel locks held.  A sink failure
	// rolls the published clone back so callers never see a half-durable
	// sandbox.
	if sink != nil && snap.storeLineage != 0 {
		var pairs []ClonePair
		for _, id := range snap.order {
			so := snap.objs[id]
			if so.typ == ObjSegment {
				pairs = append(pairs, ClonePair{SrcID: uint64(id), DstID: uint64(idMap[id]), Label: labels[id]})
			}
		}
		if err := sink.Clone(snap.storeLineage, pairs); err != nil {
			tc.unlinkClone(dest, idMap[snap.root], rootQuota)
			return CloneResult{}, fmt.Errorf("kernel: recording clone aliases: %w", err)
		}
	}

	k.snap.clones.Add(1)
	k.snap.sharedBytes.Add(shared)
	return CloneResult{
		Root:        idMap[snap.root],
		Objects:     len(built),
		SharedBytes: shared,
		IDMap:       idMap,
	}, nil
}

// unlinkClone tears down a just-published clone after a sink failure: unlink
// the root from dest, refund its quota, and drain the subtree one object at
// a time (the standard deallocation shape).
func (tc *ThreadCall) unlinkClone(dest *container, root ID, quota uint64) {
	k := tc.k
	o, err := k.lookup(root)
	if err != nil {
		return
	}
	var orphans []ID
	ls := lockOrdered(objLock{dest, true}, objLock{o, true})
	if liveLocked(dest) && dest.entries[root] {
		dest.unlink(root)
		k.refund(dest, quota)
		h := o.hdr()
		h.refs--
		if h.refs <= 0 {
			orphans = k.deallocLocked(o)
		}
	}
	ls.unlock()
	k.releaseRefs(orphans)
}
