package kernel

import (
	"histar/internal/label"
)

// CategoryCreate allocates a fresh category (cat_t create_category).  The
// invoking thread becomes the only owner: its label gains c ⋆ and its
// clearance gains c 3.  Labels are egalitarian — any thread may allocate
// arbitrarily many categories.
func (tc *ThreadCall) CategoryCreate() (label.Category, error) {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return 0, err
	}
	tc.k.count("category_create", t)
	c := tc.k.cats.Alloc()
	t.lbl = label.Intern(t.lbl.With(c, label.Star))
	t.clearance = label.Intern(t.clearance.With(c, label.L3))
	t.bump()
	return c, nil
}

// CategoryCreateNamed is CategoryCreate plus a human-readable display name
// for the new category (diagnostics only; confers nothing).
func (tc *ThreadCall) CategoryCreateNamed(name string) (label.Category, error) {
	c, err := tc.CategoryCreate()
	if err != nil {
		return 0, err
	}
	tc.k.cats.SetName(c, name)
	return c, nil
}

// SelfLabel returns the invoking thread's current label.
func (tc *ThreadCall) SelfLabel() (label.Label, error) {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return label.Label{}, err
	}
	tc.k.count("self_get_label", t)
	return t.lbl, nil
}

// SelfClearance returns the invoking thread's current clearance.
func (tc *ThreadCall) SelfClearance() (label.Label, error) {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return label.Label{}, err
	}
	tc.k.count("self_get_clearance", t)
	return t.clearance, nil
}

// SelfSetLabel changes the invoking thread's label to l, permitted only when
// LT ⊑ l ⊑ CT (int self_set_label).  A thread can therefore taint itself to
// read more tainted objects, but can never shed taint it does not own.
func (tc *ThreadCall) SelfSetLabel(l label.Label) error {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return err
	}
	tc.k.count("self_set_label", t)
	if !label.ValidThreadLabel(l) {
		return ErrInvalid
	}
	if !tc.k.leq(t.lbl, l) || !tc.k.leq(l, t.clearance) {
		return ErrLabel
	}
	t.lbl = label.Intern(l)
	// The thread-local segment follows the thread's taint so the thread can
	// always write its own scratch space.
	t.localSegment.lbl = label.Intern(l.LowerStar())
	t.bump()
	return nil
}

// SelfSetClearance changes the invoking thread's clearance to c, permitted
// only when LT ⊑ c ⊑ (CT ⊔ LTᴶ) (int self_set_clearance).  A thread may
// lower its clearance in any category (not below its label) and may raise
// clearance only in categories it owns.
func (tc *ThreadCall) SelfSetClearance(c label.Label) error {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return err
	}
	tc.k.count("self_set_clearance", t)
	if !label.ValidClearance(c) {
		return ErrInvalid
	}
	if !tc.k.leq(t.lbl, c) || !tc.k.leq(c, t.clearance.Join(t.lbl.RaiseJ())) {
		return ErrLabel
	}
	t.clearance = label.Intern(c)
	t.bump()
	return nil
}

// SelfAddressSpace returns the container entry of the invoking thread's
// current address space.
func (tc *ThreadCall) SelfAddressSpace() (CEnt, error) {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return CEnt{}, err
	}
	tc.k.count("self_get_as", t)
	return t.addressSpace, nil
}

// SelfSetAddressSpace switches the invoking thread to a different address
// space (self_set_as).  The thread must be able to observe the address
// space: LA ⊑ LTᴶ.
func (tc *ThreadCall) SelfSetAddressSpace(as CEnt) error {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return err
	}
	tc.k.count("self_set_as", t)
	o, err := tc.k.resolve(t.lbl, as)
	if err != nil {
		return err
	}
	a, ok := o.(*addressSpace)
	if !ok {
		return ErrWrongType
	}
	if !tc.k.canObserve(t.lbl, a.lbl) {
		return ErrLabel
	}
	t.addressSpace = as
	t.bump()
	return nil
}

// ThreadSpec describes a thread to be created.
type ThreadSpec struct {
	// Label and Clearance for the new thread; must satisfy
	// LT ⊑ Label ⊑ Clearance ⊑ CT for the creating thread.
	Label     label.Label
	Clearance label.Label
	// AddressSpace the new thread starts with (may be the zero CEnt when the
	// creator will set it later through its own ThreadCall).
	AddressSpace CEnt
	// Descrip is the 32-byte descriptive string.
	Descrip string
	// Quota is the storage charged to the containing container (0 picks a
	// small default).
	Quota uint64
}

// ThreadCreate creates a new thread in container d.  The creating thread
// must be able to write d, and the new thread's label and clearance must
// satisfy LT ⊑ LT′ ⊑ CT′ ⊑ CT.  The new thread does not run by itself in
// this simulation; the caller obtains its syscall context from
// Kernel.ThreadCall and drives it (typically from a new goroutine).
func (tc *ThreadCall) ThreadCreate(d ID, spec ThreadSpec) (ID, error) {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return NilID, err
	}
	tc.k.count("thread_create", t)
	if !label.ValidThreadLabel(spec.Label) || !label.ValidClearance(spec.Clearance) {
		return NilID, ErrInvalid
	}
	cont, err := tc.k.lookupContainer(d)
	if err != nil {
		return NilID, err
	}
	if cont.immutable {
		return NilID, ErrImmutable
	}
	if cont.avoidTypes.Has(ObjThread) {
		return NilID, ErrAvoidType
	}
	if !tc.k.canModify(t.lbl, cont.lbl) {
		return NilID, ErrLabel
	}
	// LT ⊑ LT' ⊑ CT' ⊑ CT.
	if !tc.k.leq(t.lbl, spec.Label) || !tc.k.leq(spec.Label, spec.Clearance) || !tc.k.leq(spec.Clearance, t.clearance) {
		return NilID, ErrLabel
	}
	quota := spec.Quota
	if quota == 0 {
		quota = 1 << 20
	}
	if err := tc.k.chargeLocked(cont, quota); err != nil {
		return NilID, err
	}
	nt := &thread{
		header: header{
			id:      tc.k.newID(),
			objType: ObjThread,
			lbl:     label.Intern(spec.Label),
			quota:   quota,
			descrip: truncDescrip(spec.Descrip),
		},
		clearance:    label.Intern(spec.Clearance),
		addressSpace: spec.AddressSpace,
		alertCh:      make(chan struct{}, 1),
	}
	nt.localSegment = &segment{
		header: header{
			id:      tc.k.newID(),
			objType: ObjSegment,
			lbl:     label.Intern(spec.Label.LowerStar()),
			quota:   localSegmentSize,
			descrip: "thread-local segment",
		},
		data:             make([]byte, localSegmentSize),
		threadLocalOwner: nt.id,
	}
	nt.usage = nt.footprint()
	tc.k.objects[nt.id] = nt
	cont.link(nt.id)
	nt.refs = 1
	return nt.id, nil
}

// ThreadHalt halts the invoking thread.  Further system calls through its
// context return ErrHalted.
func (tc *ThreadCall) ThreadHalt() error {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return err
	}
	tc.k.count("thread_halt", t)
	t.halted = true
	t.bump()
	return nil
}

// Halted reports whether the thread has been halted (or deallocated).
func (tc *ThreadCall) Halted() bool {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	_, err := tc.self()
	return err != nil
}

// ThreadAlert sends an alert (HiStar's low-level signal) to the thread named
// by target.  The invoking thread must be able to write the target thread's
// address space (LT ⊑ LA ⊑ LTᴶ) and to observe the target (Ltarget ⊑ LTᴶ).
// The alert code is queued and the target's alert handler (or AlertWait)
// consumes it.
func (tc *ThreadCall) ThreadAlert(target CEnt, code uint64) error {
	tc.k.mu.Lock()
	t, err := tc.self()
	if err != nil {
		tc.k.mu.Unlock()
		return err
	}
	tc.k.count("thread_alert", t)
	o, err := tc.k.resolve(t.lbl, target)
	if err != nil {
		tc.k.mu.Unlock()
		return err
	}
	victim, ok := o.(*thread)
	if !ok {
		tc.k.mu.Unlock()
		return ErrWrongType
	}
	// Observe the target thread.
	if !tc.k.canObserve(t.lbl, victim.lbl) {
		tc.k.mu.Unlock()
		return ErrLabel
	}
	// Write the target's address space.
	if victim.addressSpace.Object != NilID {
		aso, err := tc.k.lookup(victim.addressSpace.Object)
		if err != nil {
			tc.k.mu.Unlock()
			return err
		}
		as, ok := aso.(*addressSpace)
		if !ok {
			tc.k.mu.Unlock()
			return ErrWrongType
		}
		if !tc.k.canModify(t.lbl, as.lbl) {
			tc.k.mu.Unlock()
			return ErrLabel
		}
	} else {
		// No address space: fall back to requiring write permission on the
		// thread object itself.
		if !tc.k.canModify(t.lbl, victim.lbl) {
			tc.k.mu.Unlock()
			return ErrLabel
		}
	}
	victim.alertQueue = append(victim.alertQueue, code)
	ch := victim.alertCh
	tc.k.mu.Unlock()
	// Non-blocking notify.
	select {
	case ch <- struct{}{}:
	default:
	}
	return nil
}

// AlertPoll removes and returns a pending alert, if any.
func (tc *ThreadCall) AlertPoll() (uint64, bool, error) {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return 0, false, err
	}
	tc.k.count("alert_poll", t)
	if len(t.alertQueue) == 0 {
		return 0, false, nil
	}
	code := t.alertQueue[0]
	t.alertQueue = t.alertQueue[1:]
	return code, true, nil
}

// AlertWait blocks until an alert is delivered to the invoking thread, then
// returns its code.
func (tc *ThreadCall) AlertWait() (uint64, error) {
	for {
		tc.k.mu.Lock()
		t, err := tc.self()
		if err != nil {
			tc.k.mu.Unlock()
			return 0, err
		}
		if len(t.alertQueue) > 0 {
			code := t.alertQueue[0]
			t.alertQueue = t.alertQueue[1:]
			tc.k.mu.Unlock()
			return code, nil
		}
		ch := t.alertCh
		tc.k.mu.Unlock()
		<-ch
	}
}

// LocalSegmentWrite writes into the invoking thread's one-page thread-local
// segment, which is always writable by the current thread regardless of its
// label.
func (tc *ThreadCall) LocalSegmentWrite(off int, data []byte) error {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return err
	}
	tc.k.count("local_segment_write", t)
	if off < 0 || off+len(data) > len(t.localSegment.data) {
		return ErrInvalid
	}
	copy(t.localSegment.data[off:], data)
	return nil
}

// LocalSegmentRead reads from the invoking thread's thread-local segment.
func (tc *ThreadCall) LocalSegmentRead(off, n int) ([]byte, error) {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return nil, err
	}
	tc.k.count("local_segment_read", t)
	if off < 0 || n < 0 || off+n > len(t.localSegment.data) {
		return nil, ErrInvalid
	}
	out := make([]byte, n)
	copy(out, t.localSegment.data[off:off+n])
	return out, nil
}

// GrantOwnership is a convenience used by trusted bootstrap and test code to
// hand ownership of a category to a thread directly.  In the real system
// ownership transfers only through gates or thread creation; the user-level
// library uses those mechanisms, but tests need a way to set up initial
// conditions (for instance, a user's login shell owning ur and uw).
// The invoking thread must itself own the category.
func (tc *ThreadCall) GrantOwnership(target ID, c label.Category) error {
	tc.k.mu.Lock()
	defer tc.k.mu.Unlock()
	t, err := tc.self()
	if err != nil {
		return err
	}
	tc.k.count("grant_ownership", t)
	if !t.lbl.Owns(c) {
		return ErrLabel
	}
	o, err := tc.k.lookup(target)
	if err != nil {
		return err
	}
	vt, ok := o.(*thread)
	if !ok {
		return ErrWrongType
	}
	vt.lbl = label.Intern(vt.lbl.With(c, label.Star))
	vt.clearance = label.Intern(vt.clearance.With(c, label.L3))
	vt.bump()
	return nil
}
