package kernel

import (
	"histar/internal/label"
)

// CategoryCreate allocates a fresh category (cat_t create_category).  The
// invoking thread becomes the only owner: its label gains c ⋆ and its
// clearance gains c 3.  Labels are egalitarian — any thread may allocate
// arbitrarily many categories.
func (tc *ThreadCall) CategoryCreate() (label.Category, error) {
	ctx, err := tc.enter(scCategoryCreate)
	if err != nil {
		return 0, err
	}
	c := tc.k.cats.Alloc()
	t := ctx.t
	t.mu.Lock()
	t.lbl = label.Intern(t.lbl.With(c, label.Star))
	t.clearance = label.Intern(t.clearance.With(c, label.L3))
	t.bump()
	t.mu.Unlock()
	return c, nil
}

// CategoryCreateNamed is CategoryCreate plus a human-readable display name
// for the new category (diagnostics only; confers nothing).
func (tc *ThreadCall) CategoryCreateNamed(name string) (label.Category, error) {
	c, err := tc.CategoryCreate()
	if err != nil {
		return 0, err
	}
	tc.k.cats.SetName(c, name)
	return c, nil
}

// SelfLabel returns the invoking thread's current label.
func (tc *ThreadCall) SelfLabel() (label.Label, error) {
	ctx, err := tc.enter(scSelfGetLabel)
	if err != nil {
		return label.Label{}, err
	}
	return ctx.lbl, nil
}

// SelfClearance returns the invoking thread's current clearance.
func (tc *ThreadCall) SelfClearance() (label.Label, error) {
	ctx, err := tc.enter(scSelfGetClearance)
	if err != nil {
		return label.Label{}, err
	}
	return ctx.clearance, nil
}

// SelfSetLabel changes the invoking thread's label to l, permitted only when
// LT ⊑ l ⊑ CT (int self_set_label).  A thread can therefore taint itself to
// read more tainted objects, but can never shed taint it does not own.
func (tc *ThreadCall) SelfSetLabel(l label.Label) error {
	ctx, err := tc.enter(scSelfSetLabel)
	if err != nil {
		return err
	}
	if !label.ValidThreadLabel(l) {
		return ErrInvalid
	}
	t := ctx.t
	// The thread-local segment follows the thread's taint so the thread can
	// always write its own scratch space.
	ls := lockOrdered(objLock{t, true}, objLock{t.localSegment, true})
	defer ls.unlock()
	// Validate against the thread's label as it is now, under the lock.
	if !tc.k.leq(t.lbl, l) || !tc.k.leq(l, t.clearance) {
		return ErrLabel
	}
	t.lbl = label.Intern(l)
	t.localSegment.lbl = label.Intern(l.LowerStar())
	t.bump()
	return nil
}

// SelfSetClearance changes the invoking thread's clearance to c, permitted
// only when LT ⊑ c ⊑ (CT ⊔ LTᴶ) (int self_set_clearance).  A thread may
// lower its clearance in any category (not below its label) and may raise
// clearance only in categories it owns.
func (tc *ThreadCall) SelfSetClearance(c label.Label) error {
	ctx, err := tc.enter(scSelfSetClearance)
	if err != nil {
		return err
	}
	if !label.ValidClearance(c) {
		return ErrInvalid
	}
	t := ctx.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if !tc.k.leq(t.lbl, c) || !tc.k.leq(c, t.clearance.Join(t.lbl.RaiseJ())) {
		return ErrLabel
	}
	t.clearance = label.Intern(c)
	t.bump()
	return nil
}

// SelfAddressSpace returns the container entry of the invoking thread's
// current address space.
func (tc *ThreadCall) SelfAddressSpace() (CEnt, error) {
	ctx, err := tc.enter(scSelfGetAS)
	if err != nil {
		return CEnt{}, err
	}
	return ctx.as, nil
}

// SelfSetAddressSpace switches the invoking thread to a different address
// space (self_set_as).  The thread must be able to observe the address
// space: LA ⊑ LTᴶ.
func (tc *ThreadCall) SelfSetAddressSpace(as CEnt) error {
	ctx, err := tc.enter(scSelfSetAS)
	if err != nil {
		return err
	}
	_, obj, err := tc.k.peek(ctx, as)
	if err != nil {
		return err
	}
	a, ok := obj.(*addressSpace)
	if !ok {
		return ErrWrongType
	}
	if !tc.k.canObserveT(ctx.t, ctx.lbl, a.lbl) {
		return ErrLabel
	}
	t := ctx.t
	t.mu.Lock()
	t.addressSpace = as
	t.bump()
	t.mu.Unlock()
	return nil
}

// ThreadSpec describes a thread to be created.
type ThreadSpec struct {
	// Label and Clearance for the new thread; must satisfy
	// LT ⊑ Label ⊑ Clearance ⊑ CT for the creating thread.
	Label     label.Label
	Clearance label.Label
	// AddressSpace the new thread starts with (may be the zero CEnt when the
	// creator will set it later through its own ThreadCall).
	AddressSpace CEnt
	// Descrip is the 32-byte descriptive string.
	Descrip string
	// Quota is the storage charged to the containing container (0 picks a
	// small default).
	Quota uint64
}

// ThreadCreate creates a new thread in container d.  The creating thread
// must be able to write d, and the new thread's label and clearance must
// satisfy LT ⊑ LT′ ⊑ CT′ ⊑ CT.  The new thread does not run by itself in
// this simulation; the caller obtains its syscall context from
// Kernel.ThreadCall and drives it (typically from a new goroutine).
func (tc *ThreadCall) ThreadCreate(d ID, spec ThreadSpec) (ID, error) {
	ctx, err := tc.enter(scThreadCreate)
	if err != nil {
		return NilID, err
	}
	if !label.ValidThreadLabel(spec.Label) || !label.ValidClearance(spec.Clearance) {
		return NilID, ErrInvalid
	}
	cont, err := tc.k.lookupContainer(d)
	if err != nil {
		return NilID, err
	}
	if cont.avoidTypes.Has(ObjThread) {
		return NilID, ErrAvoidType
	}
	if !tc.k.canModifyT(ctx.t, ctx.lbl, cont.lbl) {
		return NilID, ErrLabel
	}
	// LT ⊑ LT' ⊑ CT' ⊑ CT.
	if !tc.k.leq(ctx.lbl, spec.Label) || !tc.k.leq(spec.Label, spec.Clearance) || !tc.k.leq(spec.Clearance, ctx.clearance) {
		return NilID, ErrLabel
	}
	quota := spec.Quota
	if quota == 0 {
		quota = 1 << 20
	}
	nt := &thread{
		header: header{
			id:      tc.k.newID(),
			objType: ObjThread,
			lbl:     label.Intern(spec.Label),
			quota:   quota,
			descrip: truncDescrip(spec.Descrip),
			refs:    1,
		},
		clearance:    label.Intern(spec.Clearance),
		addressSpace: spec.AddressSpace,
		alertCh:      make(chan struct{}, 1),
	}
	nt.localSegment = &segment{
		header: header{
			id:      tc.k.newID(),
			objType: ObjSegment,
			lbl:     label.Intern(spec.Label.LowerStar()),
			quota:   localSegmentSize,
			descrip: "thread-local segment",
		},
		data:             make([]byte, localSegmentSize),
		threadLocalOwner: nt.id,
	}
	nt.usage = nt.footprint()
	cont.mu.Lock()
	defer cont.mu.Unlock()
	if !liveLocked(cont) {
		return NilID, ErrNoSuchObject
	}
	if cont.immutable {
		return NilID, ErrImmutable
	}
	if err := tc.k.charge(cont, quota); err != nil {
		return NilID, err
	}
	tc.k.insert(nt)
	cont.link(nt.id)
	return nt.id, nil
}

// ThreadHalt halts the invoking thread.  Further system calls through its
// context return ErrHalted.
func (tc *ThreadCall) ThreadHalt() error {
	ctx, err := tc.enter(scThreadHalt)
	if err != nil {
		return err
	}
	t := ctx.t
	t.mu.Lock()
	t.halted = true
	t.bump()
	t.mu.Unlock()
	return nil
}

// Halted reports whether the thread has been halted (or deallocated).
func (tc *ThreadCall) Halted() bool {
	o, err := tc.k.lookup(tc.tid)
	if err != nil {
		return true
	}
	t, ok := o.(*thread)
	if !ok {
		return true
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.halted
}

// ThreadAlert sends an alert (HiStar's low-level signal) to the thread named
// by target.  The invoking thread must be able to write the target thread's
// address space (LT ⊑ LA ⊑ LTᴶ) and to observe the target (Ltarget ⊑ LTᴶ).
// The alert code is queued and the target's alert handler (or AlertWait)
// consumes it.
func (tc *ThreadCall) ThreadAlert(target CEnt, code uint64) error {
	ctx, err := tc.enter(scThreadAlert)
	if err != nil {
		return err
	}
	cont, obj, err := tc.k.peek(ctx, target)
	if err != nil {
		return err
	}
	victim, ok := obj.(*thread)
	if !ok {
		return ErrWrongType
	}
	ls := lockOrdered(objLock{cont, false}, objLock{victim, true})
	if err := cont.verifyLinked(victim.id); err != nil {
		ls.unlock()
		return err
	}
	if !liveLocked(victim) {
		ls.unlock()
		return ErrNoSuchObject
	}
	// Observe the target thread (its label is read under its lock).
	if !tc.k.canObserve(ctx.lbl, victim.lbl) {
		ls.unlock()
		return ErrLabel
	}
	// Write the target's address space.
	if victim.addressSpace.Object != NilID {
		aso, err := tc.k.lookup(victim.addressSpace.Object)
		if err != nil {
			ls.unlock()
			return err
		}
		as, ok := aso.(*addressSpace)
		if !ok {
			ls.unlock()
			return ErrWrongType
		}
		// Address-space labels are immutable; no lock on it needed.
		if !tc.k.canModifyT(ctx.t, ctx.lbl, as.lbl) {
			ls.unlock()
			return ErrLabel
		}
	} else {
		// No address space: fall back to requiring write permission on the
		// thread object itself.
		if !tc.k.canModify(ctx.lbl, victim.lbl) {
			ls.unlock()
			return ErrLabel
		}
	}
	victim.alertQueue = append(victim.alertQueue, code)
	ch := victim.alertCh
	ls.unlock()
	// Non-blocking notify.
	select {
	case ch <- struct{}{}:
	default:
	}
	return nil
}

// AlertPoll removes and returns a pending alert, if any.
func (tc *ThreadCall) AlertPoll() (uint64, bool, error) {
	ctx, err := tc.enter(scAlertPoll)
	if err != nil {
		return 0, false, err
	}
	t := ctx.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.alertQueue) == 0 {
		return 0, false, nil
	}
	code := t.alertQueue[0]
	t.alertQueue = t.alertQueue[1:]
	return code, true, nil
}

// AlertWait blocks until an alert is delivered to the invoking thread, then
// returns its code.
func (tc *ThreadCall) AlertWait() (uint64, error) {
	for {
		o, err := tc.k.lookup(tc.tid)
		if err != nil {
			return 0, ErrHalted
		}
		t, ok := o.(*thread)
		if !ok {
			return 0, ErrWrongType
		}
		t.mu.Lock()
		if t.halted {
			t.mu.Unlock()
			return 0, ErrHalted
		}
		if len(t.alertQueue) > 0 {
			code := t.alertQueue[0]
			t.alertQueue = t.alertQueue[1:]
			t.mu.Unlock()
			return code, nil
		}
		ch := t.alertCh
		t.mu.Unlock()
		<-ch
	}
}

// LocalSegmentWrite writes into the invoking thread's one-page thread-local
// segment, which is always writable by the current thread regardless of its
// label.
func (tc *ThreadCall) LocalSegmentWrite(off int, data []byte) error {
	ctx, err := tc.enter(scLocalSegmentWrite)
	if err != nil {
		return err
	}
	seg := ctx.t.localSegment
	seg.mu.Lock()
	defer seg.mu.Unlock()
	if off < 0 || off+len(data) > len(seg.data) {
		return ErrInvalid
	}
	copy(seg.data[off:], data)
	return nil
}

// LocalSegmentRead reads from the invoking thread's thread-local segment.
func (tc *ThreadCall) LocalSegmentRead(off, n int) ([]byte, error) {
	ctx, err := tc.enter(scLocalSegmentRead)
	if err != nil {
		return nil, err
	}
	seg := ctx.t.localSegment
	seg.mu.RLock()
	defer seg.mu.RUnlock()
	if off < 0 || n < 0 || off+n > len(seg.data) {
		return nil, ErrInvalid
	}
	out := make([]byte, n)
	copy(out, seg.data[off:off+n])
	return out, nil
}

// GrantOwnership is a convenience used by trusted bootstrap and test code to
// hand ownership of a category to a thread directly.  In the real system
// ownership transfers only through gates or thread creation; the user-level
// library uses those mechanisms, but tests need a way to set up initial
// conditions (for instance, a user's login shell owning ur and uw).
// The invoking thread must itself own the category.
func (tc *ThreadCall) GrantOwnership(target ID, c label.Category) error {
	ctx, err := tc.enter(scGrantOwnership)
	if err != nil {
		return err
	}
	if !ctx.lbl.Owns(c) {
		return ErrLabel
	}
	o, err := tc.k.lookup(target)
	if err != nil {
		return err
	}
	vt, ok := o.(*thread)
	if !ok {
		return ErrWrongType
	}
	vt.mu.Lock()
	defer vt.mu.Unlock()
	if !liveLocked(vt) {
		return ErrNoSuchObject
	}
	vt.lbl = label.Intern(vt.lbl.With(c, label.Star))
	vt.clearance = label.Intern(vt.clearance.With(c, label.L3))
	vt.bump()
	return nil
}
