// Package histar is a reproduction of "Making Information Flow Explicit in
// HiStar" (Zeldovich, Boyd-Wickizer, Kohler, Mazières; OSDI 2006) as a Go
// library: the kernel object model and label algebra, the single-level
// store, the user-level Unix library, and the paper's applications (the
// wrapped virus scanner, untrusted login, VPN isolation, and per-user web
// services), together with a benchmark harness that regenerates the shape of
// the paper's Figure 12 and Figure 13 on simulated hardware.
//
// The root package holds only the benchmark harness (bench_test.go); the
// implementation lives under internal/ and the runnable entry points under
// cmd/ and examples/.
package histar
