// Package histar is a reproduction of "Making Information Flow Explicit in
// HiStar" (Zeldovich, Boyd-Wickizer, Kohler, Mazières; OSDI 2006) as a Go
// library: the kernel object model and label algebra, the single-level
// store, the user-level Unix library, and the paper's applications (the
// wrapped virus scanner, untrusted login, VPN isolation, and per-user web
// services), together with a benchmark harness that regenerates the shape of
// the paper's Figure 12 and Figure 13 on simulated hardware.
//
// The label algebra (internal/label) keeps every label in an immutable
// canonical form — a slice of category/level pairs sorted by category, with
// the 64-bit fingerprint (and the fingerprint of the raised superscript-J
// form) computed once at construction — so the ⊑/⊔/⊓ operations are
// allocation-free linear merges, access-check caching is a pair of stored
// field reads, and hot labels are interned down to one shared
// pointer-comparable instance.  The kernel's comparison cache is sharded by
// fingerprint bits with per-shard eviction, and the single-level store
// persists labels in the same canonical serialized form.
//
// The single-level store (internal/store) makes labels first-class durable
// state: every SyncObject log record carries the object's contents and
// canonical label in one atomic commit (see the internal/wal package
// comment for the versioned record format), checkpoints are copy-on-write
// so a torn write can never corrupt the referenced snapshot, and a
// fingerprint-keyed B+-tree index answers "every object tainted by
// category c" scans — Store.ObjectsWithLabel, surfaced in the kernel as
// container_find_labeled — without deserializing a single label.  The store
// runs concurrently under the same discipline as the kernel: the object
// cache, label map, and fingerprint index are sharded by object-ID bits,
// each cached object carries its own entry lock and dirty state, the
// allocator and metadata trees sit behind narrow locks of their own, and a
// store-wide RWMutex serves only as the stop-the-world checkpoint gate.
// Concurrent SyncObject calls flow through a leader/follower group
// committer — sealed records batch into one wal.AppendBatch plus a single
// Commit and flush, with every syncer waiting on a commit ticket — so
// many fsyncs share one log write (see the internal/store package comment
// for the locking discipline and the group-commit protocol's
// crash-consistency invariants).  A crash-injection harness (disk.FaultDisk
// plus the recovery tests in internal/store) replays every write-boundary
// crash point of randomized workloads — serial and concurrent, including
// mid-batch and partial-destage crashes — against a reference model to keep
// those guarantees checkable.
//
// The kernel (internal/kernel) runs system calls with no global lock: the
// object table is sharded by object-ID bits with a per-shard RWMutex, every
// object carries its own RW lock, and multi-object syscalls acquire object
// locks in ascending object-ID order (see the internal/kernel package
// comment for the full discipline).  Read-mostly syscalls take only read
// locks; each thread additionally fronts the shared comparison cache with a
// small lock-free L1 keyed by both labels' fingerprints, so the hottest
// canObserve checks touch no mutex.  Syscall statistics are striped atomic
// counters indexed by a fixed syscall enum, merged on read.
//
// Batched submission rides on top of that discipline: a per-thread syscall
// ring (kernel.Ring, an io_uring-style interface) queues segment and stat
// operations plus OpSync durability requests, then executes the whole batch
// under one thread snapshot per Wait.  Completions return in submission
// order with per-entry errors; a Chain flag makes an entry depend on its
// predecessor, with failure skipping the rest of the chain (ErrSkipped).
// Execution reorders independent chains by target object so same-object
// entries share a single resolve, lockOrdered acquisition, and liveness
// check — the sort is stable, so same-object submission order is preserved
// and a write-then-read needs no Chain flag — while still locking
// {container, object} in ascending-ID order, adding no new lock-order edges.
// All OpSync entries in a batch reach the store as one pre-formed
// SyncObjects group, which the group committer turns into dense log batches:
// ⌈N/GroupCommitRecords⌉ flushes for N syncs instead of N.  The Unix
// library's readdir scan and its multi-file writev/fsync fan-out
// (Process.PwritevFsync, Process.FsyncMany) are built on the ring.
//
// Container snapshots make sandbox creation O(metadata): the kernel
// captures a container subtree as an immutable snapshot (segment buffers
// frozen for copy-on-write) under a deterministic lineage ID, and
// ContainerClone — also available ring-natively as OpSnapshot/OpClone —
// materializes it with fresh object IDs, intra-subtree references
// rewritten, and per-user categories remapped in every label, sharing all
// segment data COW until first write.  With a persistent store attached,
// snapshots are mirrored as refcounted store bundles: captured extents are
// pinned against the segment cleaner and the deferred-free path, bundles
// survive crashes via a WAL record and live in the metadata snapshot
// (format v4) from the next checkpoint, and a rotted shared extent
// quarantines every clone with a typed error rather than propagating
// silently.  unixlib.BakeGolden/SpawnFromGolden package the pattern as
// golden-image spawning, and webd's session cache uses it to clone each
// cold-login user's sandbox from a 64 MiB golden image in microseconds
// instead of rebuilding it (examples/goldenspawn; the acceptance floors —
// clone ≥50x faster than a scratch build, bytes copied ≤1% of bytes
// shared — are asserted in CI and recorded in BENCH_10.json).
//
// The user-level Unix library (internal/unixlib) carries no big locks
// either: program and user tables are read-mostly RWMutexes, PIDs are
// atomic, directory-segment bindings come from a sharded cache, mount
// tables are self-synchronizing, and each file descriptor owns a seek lock
// shared across the processes that share the descriptor segment — so
// multi-process workloads actually exploit the concurrent kernel and store
// beneath them.
//
// The root package holds only the benchmark harness (bench_test.go); the
// implementation lives under internal/ and the runnable entry points under
// cmd/ and examples/.
package histar
