module histar

go 1.22
