// Example: the Section 6.4 web service.  Each request runs in a worker
// holding exactly one authenticated user's categories; even an application
// handler that tries to read another user's data is stopped by the kernel.
// The server keeps authenticated workers in a session cache: the first
// request per user pays a full gate login, later ones re-check the password
// and reach the warm worker through its serve gate, and Logout tears the
// worker down so the next request logs in from scratch.
package main

import (
	"fmt"
	"log"

	"histar/internal/auth"
	"histar/internal/kernel"
	"histar/internal/unixlib"
	"histar/internal/webd"
)

func main() {
	log.SetFlags(0)
	sys, err := unixlib.Boot(unixlib.BootOptions{KernelConfig: kernel.Config{Seed: 21}})
	if err != nil {
		log.Fatal(err)
	}
	authSvc := auth.New(sys)
	authSvc.Register("alice", "alicepw")
	authSvc.Register("bob", "bobpw")
	srv := webd.NewWithConfig(sys, authSvc, webd.ProfileApp, webd.Config{MaxSessions: 8, Lanes: 2})
	defer srv.Close()

	mustServe := func(req webd.Request) string {
		resp, err := srv.Serve(req)
		if err != nil {
			return "error: " + err.Error()
		}
		return resp
	}
	fmt.Println(mustServe(webd.Request{User: "alice", Password: "alicepw", Path: "/profile/set/card=4111-1111"}))
	fmt.Println(mustServe(webd.Request{User: "bob", Password: "bobpw", Path: "/profile/set/card=5500-0000"}))
	fmt.Println("alice sees:", mustServe(webd.Request{User: "alice", Password: "alicepw", Path: "/profile"}))
	fmt.Println("bob sees:  ", mustServe(webd.Request{User: "bob", Password: "bobpw", Path: "/profile"}))
	fmt.Println("bad creds: ", mustServe(webd.Request{User: "alice", Password: "guess", Path: "/profile"}))

	st := srv.SessionStats()
	fmt.Printf("session cache: %d live, %d hits, %d cold logins, %d bad passwords\n",
		st.Live, st.Hits, st.ColdLogins, st.BadPasswords)

	// Logout invalidates the cached worker; the next request is a fresh login.
	srv.Logout("alice")
	fmt.Println("after logout:", mustServe(webd.Request{User: "alice", Password: "alicepw", Path: "/profile"}))
	st = srv.SessionStats()
	fmt.Printf("session cache: %d live, %d logouts, %d cold logins\n", st.Live, st.Logouts, st.ColdLogins)
}
