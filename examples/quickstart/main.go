// Quickstart: boot a HiStar instance, allocate categories, and watch the
// kernel's information-flow checks allow and refuse operations.  This is the
// smallest end-to-end tour of the public API: labels, threads, segments, and
// self-tainting.
package main

import (
	"fmt"
	"log"

	"histar/internal/kernel"
	"histar/internal/label"
	"histar/internal/unixlib"
)

func main() {
	log.SetFlags(0)
	sys, err := unixlib.Boot(unixlib.BootOptions{KernelConfig: kernel.Config{Seed: 1}})
	if err != nil {
		log.Fatal(err)
	}
	alice, err := sys.NewInitProcess("alice")
	if err != nil {
		log.Fatal(err)
	}
	mallory, err := sys.NewInitProcess("mallory")
	if err != nil {
		log.Fatal(err)
	}

	// Alice writes a private file: labeled {alice_r 3, alice_w 0, 1}.
	if err := alice.WriteFile("/home/alice/secret.txt", []byte("the plans"), label.Label{}); err != nil {
		log.Fatal(err)
	}
	fi, _ := alice.Stat("/home/alice/secret.txt")
	fmt.Printf("alice's file label: %s\n", fi.Label.Format(sys.Kern.CategoryAllocator()))

	// Mallory cannot read or overwrite it: the kernel, not the library,
	// refuses.
	if _, err := mallory.ReadFile("/home/alice/secret.txt"); err != nil {
		fmt.Println("mallory read  ->", err)
	}
	if err := mallory.WriteFile("/home/alice/secret.txt", []byte("haha"), label.New(label.L1)); err != nil {
		fmt.Println("mallory write ->", err)
	}

	// A thread can taint itself to read more-tainted data, but then cannot
	// write anything less tainted — information flows only upward.
	c, _ := alice.TC.CategoryCreateNamed("project")
	if err := alice.WriteFile("/tmp/tainted-notes", []byte("secret project"), label.New(label.L1, label.P(c, label.L2))); err != nil {
		log.Fatal(err)
	}
	reader, _ := sys.NewInitProcess("reader")
	fd, err := reader.Open("/tmp/tainted-notes", unixlib.ORead)
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 64)
	if _, err := reader.Pread(fd, buf, 0); err != nil {
		fmt.Println("untainted reader   ->", err)
	}
	lbl, _ := reader.TC.SelfLabel()
	if err := reader.TC.SelfSetLabel(lbl.With(c, label.L2)); err != nil {
		log.Fatal(err)
	}
	n, err := reader.Pread(fd, buf, 0)
	fmt.Printf("after self-taint   -> reads %q (err=%v)\n", buf[:n], err)
	if err := reader.WriteFile("/tmp/untainted-out", buf[:n], label.New(label.L1)); err != nil {
		fmt.Println("but cannot export  ->", err)
	}
	fmt.Println("quickstart done")
}
