// Example: the Section 6.2 untrusted login.  No superuser process exists;
// an sshd-like client authenticates against the per-user authentication
// daemon and receives ownership of the user's categories only after the
// password check, with guesses bounded by the retry-count segment.
package main

import (
	"fmt"
	"log"

	"histar/internal/auth"
	"histar/internal/kernel"
	"histar/internal/label"
	"histar/internal/unixlib"
)

func main() {
	log.SetFlags(0)
	sys, err := unixlib.Boot(unixlib.BootOptions{KernelConfig: kernel.Config{Seed: 9}})
	if err != nil {
		log.Fatal(err)
	}
	svc := auth.New(sys)
	if _, err := svc.Register("bob", "correct-horse-battery-staple"); err != nil {
		log.Fatal(err)
	}
	setup, _ := sys.NewInitProcess("bob")
	setup.WriteFile("/home/bob/mail", []byte("inbox contents"), label.Label{})

	sshd, _ := sys.NewInitProcess("") // no privileges at all
	fmt.Println("wrong password:", svc.Login(sshd, "bob", "12345"))
	if _, err := sshd.ReadFile("/home/bob/mail"); err != nil {
		fmt.Println("still cannot read bob's mail:", err)
	}
	if err := svc.Login(sshd, "bob", "correct-horse-battery-staple"); err != nil {
		log.Fatal(err)
	}
	data, err := sshd.ReadFile("/home/bob/mail")
	fmt.Printf("after login, bob's mail: %q (err=%v)\n", data, err)
	fmt.Println("auth log:")
	for _, line := range svc.Log.Entries() {
		fmt.Println("  ", line)
	}
}
