// Example: the Section 6.3 VPN isolation.  Two network stacks with distinct
// taint categories keep the corporate network and the Internet apart; only
// the VPN client, which owns both categories, can carry (encrypted) traffic
// between them, and a browser that has touched the Internet cannot reach the
// tunnel at all.
package main

import (
	"fmt"
	"log"

	"histar/internal/kernel"
	"histar/internal/netd"
	"histar/internal/unixlib"
	"histar/internal/vpn"
)

func main() {
	log.SetFlags(0)
	sys, err := unixlib.Boot(unixlib.BootOptions{KernelConfig: kernel.Config{Seed: 12}})
	if err != nil {
		log.Fatal(err)
	}
	inet, err := netd.New(sys, netd.Options{TaintName: "i"})
	if err != nil {
		log.Fatal(err)
	}
	corp, err := netd.New(sys, netd.Options{TaintName: "v"})
	if err != nil {
		log.Fatal(err)
	}
	clientProc, _ := sys.NewInitProcess("")
	if err := vpn.GrantTaintOwnership(sys, inet, corp, clientProc); err != nil {
		log.Fatal(err)
	}
	client, err := vpn.NewClient(clientProc, inet, corp, "hq-vpn:1194", "preshared-key")
	if err != nil {
		log.Fatal(err)
	}
	inet.RegisterRemote("hq-vpn:1194", func(req []byte) []byte {
		plain, err := client.Decrypt(req)
		if err != nil {
			return client.Encrypt([]byte("bad crypto"))
		}
		return client.Encrypt(append([]byte("intranet answer for: "), plain...))
	})
	inet.RegisterRemote("news.example:80", func([]byte) []byte { return []byte("public news") })

	employee, _ := sys.NewInitProcess("employee")
	resp, err := client.SendOverTunnel(employee, []byte("GET /payroll"))
	fmt.Printf("employee via tunnel: %q (err=%v)\n", resp, err)

	browser, _ := sys.NewInitProcess("browser")
	s, err := netd.Dial(inet, browser, "news.example:80")
	if err != nil {
		log.Fatal(err)
	}
	s.Send(nil)
	page, _ := s.Recv(64)
	fmt.Printf("browser read from the Internet: %q — it is now i-tainted\n", page)
	if _, err := client.SendOverTunnel(browser, []byte("GET /payroll")); err != nil {
		fmt.Println("browser refused at the tunnel:", err)
	}
}
