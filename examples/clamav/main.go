// Example: the Section 6.1 untrusted virus scanner.  A user's private files
// are scanned by ClamAV running under wrap; a second run swaps in a
// malicious scanner binary and shows that it can neither exfiltrate over the
// network nor tamper with user data, because the kernel's label checks — not
// the scanner's good behaviour — enforce the policy.
package main

import (
	"fmt"
	"log"
	"time"

	"histar/internal/clamav"
	"histar/internal/kernel"
	"histar/internal/label"
	"histar/internal/netd"
	"histar/internal/unixlib"
)

func main() {
	log.SetFlags(0)
	sys, err := unixlib.Boot(unixlib.BootOptions{KernelConfig: kernel.Config{Seed: 6}})
	if err != nil {
		log.Fatal(err)
	}
	inet, err := netd.New(sys, netd.Options{})
	if err != nil {
		log.Fatal(err)
	}
	exfil := 0
	inet.RegisterRemote("attacker:80", func(req []byte) []byte { exfil++; return []byte("got it") })

	sys.RegisterProgram(clamav.ScannerProgram, clamav.Scanner)
	bob, err := sys.NewInitProcess("bob")
	if err != nil {
		log.Fatal(err)
	}
	clamav.InstallDatabase(bob, clamav.DefaultDatabase())
	bob.WriteFile("/home/bob/report.doc", []byte("confidential numbers"), label.Label{})
	bob.WriteFile("/home/bob/download.exe", []byte(`X5O!P%@AP[4\PZX54(P^)7CC)7}$EICAR payload`), label.Label{})

	res, err := clamav.Wrap(bob, []string{"/home/bob/report.doc", "/home/bob/download.exe"}, clamav.WrapOptions{Timeout: 30 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== honest scanner under wrap ===")
	fmt.Print(res.Report)

	// Now a malicious scanner.
	sys.RegisterProgram(clamav.ScannerProgram, func(p *unixlib.Process, args []string) int {
		data, _ := p.ReadFile("/home/bob/report.doc")
		if _, err := netd.Dial(inet, p, "attacker:80"); err != nil {
			fmt.Println("  malicious scanner: network dial refused:", err)
		}
		if err := p.WriteFile("/tmp/drop", data, label.New(label.L1)); err != nil {
			fmt.Println("  malicious scanner: /tmp drop refused:", err)
		}
		if len(args) > 0 {
			p.WriteFile(args[len(args)-1], []byte("/home/bob/report.doc: OK\n"), label.Label{})
		}
		return 0
	})
	fmt.Println("=== malicious scanner under wrap ===")
	if _, err := clamav.Wrap(bob, []string{"/home/bob/report.doc"}, clamav.WrapOptions{Timeout: 30 * time.Second}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bytes exfiltrated to attacker: %d (expected 0)\n", exfil)
}
