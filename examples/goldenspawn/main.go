// Example: golden-image sandbox spawning.  A 64 MiB per-user sandbox —
// programs, data files, a scanner database — is baked once under a template
// user's categories and captured as a container snapshot.  Spawning a
// sandbox for a real user is then a ContainerClone: an O(metadata) walk
// that remaps the template's categories to the user's and shares every data
// byte copy-on-write.  The example spawns N sandboxes both ways (scratch
// build vs golden clone), prints the latency and the shared-vs-copied byte
// ledger, then has one user scribble on a private copy to show the COW
// break leaving everyone else's bytes untouched.
package main

import (
	"fmt"
	"log"
	"time"

	"histar/internal/kernel"
	"histar/internal/label"
	"histar/internal/unixlib"
)

func main() {
	log.SetFlags(0)
	const (
		sandboxBytes = 64 << 20
		nUsers       = 8
	)
	sys, err := unixlib.Boot(unixlib.BootOptions{KernelConfig: kernel.Config{Seed: 12}})
	if err != nil {
		log.Fatal(err)
	}
	tc := sys.InitThread()
	root := sys.Kern.RootContainer()

	// Bake the golden image once, under a template user.
	tmpl, err := sys.AddUser("template")
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	img, err := sys.BakeGoldenData("example-sandbox", tmpl, sandboxBytes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baked golden image %q: %d objects, %d MiB, lineage %#x (%v)\n",
		img.Name, img.Objects, img.Bytes>>20, img.Lineage, time.Since(t0).Round(time.Millisecond))

	spawns, err := tc.ContainerCreate(root, label.New(label.L1), "spawns", 0, kernel.QuotaInfinite)
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: one sandbox built from scratch, every byte written.
	t0 = time.Now()
	if _, err := sys.BuildSandboxScratch(tc, spawns, nil, sandboxBytes); err != nil {
		log.Fatal(err)
	}
	scratch := time.Since(t0)
	fmt.Printf("scratch build of the same sandbox: %v\n", scratch.Round(time.Microsecond))

	// Golden spawns: one clone per user, categories remapped to each user's.
	var roots []kernel.ID
	var users []*unixlib.User
	t0 = time.Now()
	for i := 0; i < nUsers; i++ {
		u, err := sys.AddUser(fmt.Sprintf("user%d", i))
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.SpawnFromGolden(tc, img, spawns, u)
		if err != nil {
			log.Fatal(err)
		}
		roots = append(roots, res.Root)
		users = append(users, u)
	}
	spawnAll := time.Since(t0)
	perSpawn := spawnAll / nUsers
	st := sys.Kern.SnapshotStats()
	fmt.Printf("%d golden spawns: %v total, %v each (%.0fx faster than scratch)\n",
		nUsers, spawnAll.Round(time.Microsecond), perSpawn.Round(time.Microsecond),
		float64(scratch)/float64(perSpawn))
	fmt.Printf("bytes shared COW: %d MiB; bytes copied: %d (%d COW breaks)\n",
		st.SharedBytes>>20, st.CopiedBytes, st.CowBreaks)

	// One user rewrites a corner of their sandbox: the first write breaks
	// COW for that segment only, in that user's copy only.
	kids, err := tc.ContainerList(kernel.Self(roots[0]))
	if err != nil {
		log.Fatal(err)
	}
	var seg kernel.ID
	for _, kid := range kids {
		if s, err := tc.ObjectStat(kernel.CEnt{Container: roots[0], Object: kid}); err == nil && s.Type == kernel.ObjSegment {
			seg = kid
			break
		}
	}
	if err := tc.SegmentWrite(kernel.CEnt{Container: roots[0], Object: seg}, 0, []byte("user0 was here")); err != nil {
		log.Fatal(err)
	}
	st = sys.Kern.SnapshotStats()
	fmt.Printf("after user0's first write: %d COW breaks, %d bytes copied (everyone else still shares)\n",
		st.CowBreaks, st.CopiedBytes)

	// The master image and user1's clone are untouched.
	for _, ct := range []kernel.ID{img.Root, roots[1]} {
		kids, err := tc.ContainerList(kernel.Self(ct))
		if err != nil {
			log.Fatal(err)
		}
		for _, kid := range kids {
			if s, err := tc.ObjectStat(kernel.CEnt{Container: ct, Object: kid}); err == nil && s.Type == kernel.ObjSegment {
				b, err := tc.SegmentRead(kernel.CEnt{Container: ct, Object: kid}, 0, 14)
				if err != nil {
					log.Fatal(err)
				}
				if string(b) == "user0 was here" {
					log.Fatalf("COW leak: container %d saw user0's write", ct)
				}
				break
			}
		}
	}
	fmt.Printf("master image and user %q's sandbox unaffected by user0's write\n", users[1].Name)
}
