// Command wrap is the Section 6.1 isolation wrapper as a standalone demo: it
// boots a HiStar instance, creates a user with some private files (one of
// them containing the EICAR test signature), runs the untrusted scanner
// under wrap, and prints the untainted report — then demonstrates that the
// same scanner binary, if malicious, cannot exfiltrate or modify anything.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"histar/internal/clamav"
	"histar/internal/kernel"
	"histar/internal/label"
	"histar/internal/unixlib"
)

func main() {
	log.SetFlags(0)
	sys, err := unixlib.Boot(unixlib.BootOptions{KernelConfig: kernel.Config{Seed: 1}})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.RegisterProgram(clamav.ScannerProgram, clamav.Scanner); err != nil {
		log.Fatal(err)
	}
	user, err := sys.NewInitProcess("bob")
	if err != nil {
		log.Fatal(err)
	}
	if err := clamav.InstallDatabase(user, clamav.DefaultDatabase()); err != nil {
		log.Fatal(err)
	}
	files := []string{"/home/bob/clean.doc", "/home/bob/infected.bin"}
	user.WriteFile(files[0], []byte("nothing to see here"), label.Label{})
	user.WriteFile(files[1], []byte(`X5O!P%@AP[4\PZX54(P^)7CC)7}$EICAR test body`), label.Label{})

	res, err := clamav.Wrap(user, files, clamav.WrapOptions{Timeout: 30 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== wrap: untrusted scanner report (untainted by wrap) ===")
	fmt.Print(res.Report)
	fmt.Printf("exit status %d, infected files: %v\n", res.ExitStatus, res.Infected)
	if res.ExitStatus == 1 {
		os.Exit(0)
	}
}
