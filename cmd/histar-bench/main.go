// Command histar-bench regenerates the paper's evaluation tables in textual
// form.  It prints, for every row of Figure 12 and Figure 13, the paper's
// measured value and the `go test -bench` target in this repository that
// reproduces it, and runs the quick in-process experiments (syscall counts
// per process-creation primitive, group-sync vs per-file-sync ratio, syscall
// ring batching) whose results are shown inline.  With -json the same
// metrics are emitted as a single JSON object (the per-PR BENCH_*.json
// snapshots and the CI bench-smoke artifact).  Run the full harness with:
//
//	go test -bench=. -benchmem -benchtime=1x .
package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"histar/internal/disk"
	"histar/internal/kernel"
	"histar/internal/label"
	"histar/internal/store"
	"histar/internal/unixlib"
	"histar/internal/vclock"
	"histar/internal/webd"
)

// Report is the machine-readable form of everything histar-bench measures.
type Report struct {
	GoMaxProcs int `json:"gomaxprocs"`

	// E13: syscalls per process-creation primitive (paper: 317 vs 127).
	ForkExecSyscalls uint64 `json:"fork_exec_syscalls"`
	SpawnSyscalls    uint64 `json:"spawn_syscalls"`

	LabelCache LabelCacheReport `json:"label_cache"`
	LabelL1    LabelL1Report    `json:"label_l1"`

	// E4: per-file sync time over group sync time for small-file creates.
	PerFileOverGroupSync float64 `json:"per_file_over_group_sync"`

	GroupCommit GroupCommitReport `json:"group_commit"`
	Ring        RingReport        `json:"ring"`
	TaintScan   TaintScanReport   `json:"taint_scan"`
	Integrity   IntegrityReport   `json:"integrity"`
	Stall       StallReport       `json:"stall_ms"`
	WriteAmp    WriteAmpReport    `json:"write_amplification"`
	SegCleaner  SegCleanerReport  `json:"segment_cleaner"`
	Web         WebReport         `json:"web"`
	Snapshot    SnapshotReport    `json:"snapshot"`
}

// SnapshotReport is the container-snapshot/golden-image section: capture and
// clone rates over a sandbox subtree, the byte-sharing ledger (bytes aliased
// copy-on-write vs bytes actually copied by COW breaks), the cold-spawn vs
// golden-spawn latency distributions the fast-path exists to separate, and
// the webd cold-user blend run both ways.  Wall-clock timing; the ratios
// (spawn_speedup_p50, web_cold_user_speedup) are the claim.
type SnapshotReport struct {
	// SandboxBytes/SandboxObjects describe the golden image: segment data
	// shared by every spawn, and captured object count.
	SandboxBytes   uint64 `json:"sandbox_bytes"`
	SandboxObjects int    `json:"sandbox_objects"`

	SnapshotsPerSec float64 `json:"snapshots_per_sec"`
	ClonesPerSec    float64 `json:"clones_per_sec"`

	// BytesShared counts segment bytes spawns aliased instead of copying;
	// BytesCopied counts bytes privatized by first-write COW breaks.
	BytesShared uint64 `json:"bytes_shared"`
	BytesCopied uint64 `json:"bytes_copied"`
	COWBreaks   uint64 `json:"cow_breaks"`

	ColdSpawnP50Micros   float64 `json:"cold_spawn_p50_micros"`
	ColdSpawnP99Micros   float64 `json:"cold_spawn_p99_micros"`
	GoldenSpawnP50Micros float64 `json:"golden_spawn_p50_micros"`
	GoldenSpawnP99Micros float64 `json:"golden_spawn_p99_micros"`
	// SpawnSpeedupP50 is cold-spawn p50 over golden-spawn p50 for the same
	// sandbox content.
	SpawnSpeedupP50 float64 `json:"spawn_speedup_p50"`

	// WebScratch and WebGolden run the same cold-user-heavy webd blend (more
	// users than the session cache holds, so cold logins never stop) with
	// the sandbox built from scratch vs cloned from a golden image.
	WebScratch         webd.LoadReport `json:"web_scratch"`
	WebGolden          webd.LoadReport `json:"web_golden"`
	WebColdUserSpeedup float64         `json:"web_cold_user_speedup"`
}

// WebReport is the Section 6.4 web-service section: the same many-user
// workload driven three times at equal concurrency.  Baseline pays a fresh
// worker process and full gate login per request.  Mixed runs the realistic
// blend through the session cache — a hot set plus a uniform tail bigger
// than the cache, with periodic logouts, so it pays evictions and cold
// logins continuously.  Warm prewarms the cache with a hot set that fits,
// measuring the steady state the cache exists to create.  Wall-clock
// timing, so absolute RPS varies by machine; the ratios are the claim.
type WebReport struct {
	Baseline webd.LoadReport `json:"baseline"`
	Mixed    webd.LoadReport `json:"mixed"`
	Warm     webd.LoadReport `json:"warm"`
	// MixedSpeedup is mixed RPS over baseline RPS; WarmSpeedup is warm
	// (steady-state session-hit) RPS over baseline RPS.
	MixedSpeedup float64 `json:"mixed_speedup"`
	WarmSpeedup  float64 `json:"warm_speedup"`
}

type LabelCacheReport struct {
	Hits         uint64  `json:"hits"`
	Misses       uint64  `json:"misses"`
	HitRate      float64 `json:"hit_rate"`
	Evictions    uint64  `json:"evictions"`
	ActiveShards int     `json:"active_shards"`
	TotalShards  int     `json:"total_shards"`
}

type LabelL1Report struct {
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hit_rate"`
	Threads int     `json:"threads"`
}

type GroupCommitReport struct {
	Syncs          uint64  `json:"syncs"`
	WALCommits     uint64  `json:"wal_commits"`
	CommitsPerSync float64 `json:"commits_per_sync"`
	MaxBatch       int     `json:"max_batch"`
}

// RingReport is the syscall-ring section: submission depth, lock coalescing,
// and how densely a ring-driven sync fan-out group-commits.
type RingReport struct {
	Waits          uint64  `json:"waits"`
	Entries        uint64  `json:"entries"`
	Depth          float64 `json:"entries_per_wait"`
	Runs           uint64  `json:"lock_runs"`
	Coalesced      uint64  `json:"coalesced_entries"`
	CoalesceRate   float64 `json:"coalesce_rate"`
	SyncGroups     uint64  `json:"sync_groups"`
	SyncEntries    uint64  `json:"sync_entries"`
	BatchRecords   int     `json:"batch_records"`
	WALCommits     uint64  `json:"wal_commits"`
	CommitsPerSync float64 `json:"commits_per_sync"`
}

// IntegrityReport is the on-disk integrity section: how fast a scrub pass
// verifies the image, how long the store takes to notice an injected bit
// flip on first access, and what a recovery mount (corrupt referenced
// metadata area → previous snapshot + full log replay) costs relative to a
// clean one.  All times are simulated disk time on the paper's disk model
// (vclock), so the section is deterministic like every other metric here.
type IntegrityReport struct {
	ScrubBytes          int64   `json:"scrub_bytes"`
	ScrubMBPerSec       float64 `json:"scrub_mb_per_sec"`
	ScrubObjectsChecked int     `json:"scrub_objects_checked"`
	ScrubMicros         float64 `json:"scrub_micros"`

	DetectionLatencyMicros float64 `json:"detection_latency_micros"`

	CleanOpenMicros         float64 `json:"clean_open_micros"`
	FallbackOpenMicros      float64 `json:"fallback_open_micros"`
	FallbackRecordsReplayed int     `json:"fallback_records_replayed"`

	CorruptionsDetected uint64 `json:"corruptions_detected"`
	Quarantined         int    `json:"quarantined"`
}

// StallReport is the checkpoint-stall section: SyncObject latency, in
// milliseconds of host wall clock, measured while a background goroutine
// runs checkpoints back to back.  The stop-the-world design this protocol
// replaced blocked every sync arriving during a checkpoint for the whole
// pass; with the incremental SEAL/BODY/FINISH schedule only the brief
// seal holds the exclusive lock, so the sync tail stays bounded no matter
// how long the body runs.  Wall clock (not the virtual disk clock, which
// is meaningless across racing goroutines) means absolute numbers vary by
// machine; the CI smoke bound is correspondingly generous.
type StallReport struct {
	Syncs          int     `json:"syncs"`
	Checkpoints    uint64  `json:"checkpoints_completed"`
	P50            float64 `json:"sync_p50"`
	P99            float64 `json:"sync_p99"`
	Max            float64 `json:"sync_max"`
	SealStallMax   float64 `json:"seal_stall_max"`
	SealStallTotal float64 `json:"seal_stall_total"`
}

// WriteAmpReport decomposes checkpoint write amplification: bytes of
// object data written to home locations, bytes the segment cleaner copied
// out of half-dead segments, and metadata snapshot bytes, with the ratio
// (home+cleaned+meta)/home.  The log is excluded on both sides — it is
// the durability cost of sync itself, not of checkpointing.
type WriteAmpReport struct {
	BytesHome        uint64  `json:"bytes_home"`
	BytesCleaned     uint64  `json:"bytes_cleaned"`
	MetaBytesWritten uint64  `json:"meta_bytes_written"`
	Ratio            float64 `json:"ratio"`
}

// SegCleanerReport is the segment-cleaner section: how many append-only
// data segments the workload opened, and how many the cleaner copied out
// (live objects relocated, segment freed) or freed outright (no live
// objects left).  CRCBackfills counts legacy extents that gained a
// contents CRC during checkpoint, the migration path for v2 images.
type SegCleanerReport struct {
	SegsAllocated uint64 `json:"segs_allocated"`
	SegsCleaned   uint64 `json:"segs_cleaned"`
	SegsFreed     uint64 `json:"segs_freed"`
	BytesCleaned  uint64 `json:"bytes_cleaned"`
	CRCBackfills  uint64 `json:"crc_backfills"`
}

type TaintScanReport struct {
	TaintedObjects int    `json:"tainted_objects"`
	LabelDecodes   uint64 `json:"label_decodes"`
	IndexEntries   int    `json:"index_entries"`
	LabeledObjects int    `json:"labeled_objects"`
	KernelMatches  int    `json:"kernel_matches"`
}

var evalRows = [][3]string{
	{"Fig 12: IPC round trip", "HiStar 3.11us / Linux 4.32us / OpenBSD 2.13us", "BenchmarkFig12_IPC_*"},
	{"Fig 12: fork/exec", "HiStar 1.35ms / Linux+OpenBSD 0.18ms", "BenchmarkFig12_ForkExec_*"},
	{"Fig 12: spawn", "HiStar 0.47ms", "BenchmarkFig12_Spawn_HiStar"},
	{"Fig 12: LFS small create (async/sync/group)", "0.31s / 459s / 2.57s (HiStar)", "BenchmarkFig12_LFSSmallCreate_*"},
	{"Fig 12: LFS small read (cached/uncached/no-prefetch)", "0.16s / 6.49s / 86.4s (HiStar)", "BenchmarkFig12_LFSSmallRead_*"},
	{"Fig 12: LFS small unlink (async/sync/group)", "0.09s / 456s / 0.38s (HiStar)", "BenchmarkFig12_LFSSmallUnlink_*"},
	{"Fig 12: LFS large seq write / sync rand write / read", "2.14s / 93.0s / 1.96s (HiStar)", "BenchmarkFig12_LFSLarge*"},
	{"Fig 13: building the kernel", "HiStar 6.2s / Linux 4.7s / OpenBSD 6.0s", "BenchmarkFig13_Build_*"},
	{"Fig 13: wget 100MB", "9.1s / 9.0s / 9.0s (link-saturated)", "BenchmarkFig13_Wget100MB_HiStar"},
	{"Fig 13: virus-scan 100MB (plain / with wrap)", "18.7s / 18.7s (HiStar)", "BenchmarkFig13_VirusScan_*"},
	{"Sec 4.1: code size inventory", "15,200 C lines (kernel)", "go run ./cmd/loc"},
}

func main() {
	jsonOut := flag.Bool("json", false, "emit the metrics as one JSON object instead of text")
	flag.Parse()

	var r Report
	r.GoMaxProcs = runtime.GOMAXPROCS(0)
	// The web section runs first: the disk sections below leave gigabytes of
	// simulated platters live on the heap, and GC pacing over that heap
	// throttles the high-RPS cached runs if they go second.
	webRun(&r)
	snapshotRun(&r)
	syscallCounts(&r)
	r.PerFileOverGroupSync = groupVsPerFileSync()
	groupCommitRun(&r)
	ringRun(&r)
	taintedObjectScan(&r)
	integrityRun(&r)
	checkpointStallRun(&r)
	segmentCleanerRun(&r)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&r); err != nil {
			panic(err)
		}
		return
	}
	printReport(&r)
}

// syscallCounts boots a fresh system, measures E13 (syscalls per
// process-creation primitive), and snapshots the label caches that run
// exercised.
func syscallCounts(r *Report) {
	sys, err := unixlib.Boot(unixlib.BootOptions{KernelConfig: kernel.Config{Seed: 2}})
	must(err)
	must(sys.RegisterProgram("/bin/true", func(p *unixlib.Process, args []string) int { return 0 }))
	p, err := sys.NewInitProcess("bench")
	must(err)
	sys.Kern.ResetSyscallCounts()
	child, err := p.Fork()
	must(err)
	must(child.Exec("/bin/true", nil))
	p.Wait(child)
	r.ForkExecSyscalls = sys.Kern.SyscallTotal()
	sys.Kern.ResetSyscallCounts()
	child2, err := p.Spawn("/bin/true", nil)
	must(err)
	p.Wait(child2)
	r.SpawnSyscalls = sys.Kern.SyscallTotal()

	// Label comparison-cache behaviour over the run above (Section 4's
	// immutable-label memoization).
	cs := sys.Kern.LabelCacheStats()
	for _, sh := range cs.Shards {
		if sh.Entries > 0 || sh.Hits+sh.Misses > 0 {
			r.LabelCache.ActiveShards++
		}
	}
	r.LabelCache.TotalShards = len(cs.Shards)
	r.LabelCache.Hits, r.LabelCache.Misses, r.LabelCache.Evictions = cs.Hits, cs.Misses, cs.Evictions
	r.LabelCache.HitRate = rate(cs.Hits, cs.Misses)

	// Per-thread L1 in front of the sharded cache: the hottest canObserve
	// checks are answered from a lock-free per-thread array.
	l1 := sys.Kern.LabelL1Stats()
	r.LabelL1 = LabelL1Report{Hits: l1.Hits, Misses: l1.Misses, HitRate: rate(l1.Hits, l1.Misses), Threads: len(l1.Threads)}
}

func rate(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return 100 * float64(hits) / float64(hits+misses)
}

// ringRun exercises the syscall ring the way the Unix library's hot paths
// do: mixed read-heavy batches for depth/coalescing, then a multi-file
// writev/fsync fan-out whose OpSync entries reach the store as pre-formed
// groups.  A small GroupCommitRecords bound makes the ⌈files/batch⌉ commit
// math visible with few files.
func ringRun(r *Report) {
	const (
		batchRecs = 8
		nFiles    = 32
		batches   = 64
	)
	clk := &vclock.Clock{}
	d := disk.New(disk.Params{Sectors: 1 << 18, WriteCache: true}, clk)
	st, err := store.Format(d, store.Options{LogSize: 8 << 20, GroupCommitRecords: batchRecs})
	must(err)
	sys, err := unixlib.Boot(unixlib.BootOptions{Persist: st, KernelConfig: kernel.Config{Seed: 6}})
	must(err)
	p, err := sys.NewInitProcess("ring")
	must(err)

	// Depth/coalescing: 16-entry mixed batches against two segments.
	tc := p.TC
	root := sys.Kern.RootContainer()
	lbl := label.New(label.L1)
	hot, err := tc.SegmentCreate(root, lbl, "ring-hot", 256)
	must(err)
	own, err := tc.SegmentCreate(root, lbl, "ring-own", 256)
	must(err)
	hotCE := kernel.CEnt{Container: root, Object: hot}
	ownCE := kernel.CEnt{Container: root, Object: own}
	sys.Kern.ResetRingStats()
	ring := tc.NewRing()
	for b := 0; b < batches; b++ {
		for j := 0; j < 16; j++ {
			ce := hotCE
			if j%2 == 1 {
				ce = ownCE
			}
			e := kernel.RingEntry{Op: kernel.OpSegmentRead, Seg: ce, Off: 0, Len: 64}
			if j == 7 {
				e = kernel.RingEntry{Op: kernel.OpSegmentWrite, Seg: ownCE, Off: 0, Data: []byte("ringdata")}
			}
			ring.Submit(e)
		}
		comps, err := ring.Wait(16)
		must(err)
		for i := range comps {
			must(comps[i].Err)
		}
	}

	// Fan-out: one PwritevFsync over nFiles dirty files — one ring batch of
	// writes+read-backs, one SyncObjects group, dense WAL batches.
	fds := make([]int, nFiles)
	ops := make([]unixlib.WriteOp, nFiles)
	for i := range fds {
		fd, err := p.Create(fmt.Sprintf("/tmp/ring%d", i), label.Label{})
		must(err)
		fds[i] = fd
		ops[i] = unixlib.WriteOp{FD: fd, Off: 0, Data: []byte(fmt.Sprintf("ring payload %d", i))}
	}
	commitsBefore := st.WALStats().Commits
	_, err = p.PwritevFsync(ops)
	must(err)

	rs := sys.Kern.RingStats()
	r.Ring = RingReport{
		Waits:        rs.Waits,
		Entries:      rs.Entries,
		Runs:         rs.Runs,
		Coalesced:    rs.Coalesced,
		SyncGroups:   rs.SyncGroups,
		SyncEntries:  rs.SyncEntries,
		BatchRecords: batchRecs,
		WALCommits:   st.WALStats().Commits - commitsBefore,
	}
	if rs.Waits > 0 {
		r.Ring.Depth = float64(rs.Entries) / float64(rs.Waits)
	}
	if rs.Runs+rs.Coalesced > 0 {
		r.Ring.CoalesceRate = 100 * float64(rs.Coalesced) / float64(rs.Runs+rs.Coalesced)
	}
	if rs.SyncEntries > 0 {
		r.Ring.CommitsPerSync = float64(r.Ring.WALCommits) / float64(rs.SyncEntries)
	}
}

func taintedObjectScan(r *Report) {
	clk := &vclock.Clock{}
	params := disk.PaperDisk()
	params.Sectors = (1 << 30) / disk.SectorSize
	params.WriteCache = true
	d := disk.New(params, clk)
	st, err := store.Format(d, store.Options{LogSize: 32 << 20})
	must(err)
	sys, err := unixlib.Boot(unixlib.BootOptions{Persist: st, KernelConfig: kernel.Config{Seed: 4}})
	must(err)
	p, err := sys.NewInitProcess("scan")
	must(err)
	tc := p.TC
	cat, err := tc.CategoryCreateNamed("taint")
	must(err)
	taint := label.New(label.L1, label.P(cat, label.L3))
	plain := label.New(label.L1)
	payload := make([]byte, 512)
	for i := 0; i < 40; i++ {
		lbl := plain
		if i%4 == 0 {
			lbl = taint
		}
		must(p.WriteFile(fmt.Sprintf("/tmp/s%d", i), payload, lbl))
	}
	must(p.FsyncPath("/tmp/s0")) // push at least one labeled record through the log

	decodesBefore := st.Stats().LabelDecodes
	ids := st.ObjectsWithLabel(taint.Fingerprint())
	stStats := st.Stats()
	r.TaintScan.TaintedObjects = len(ids)
	r.TaintScan.LabelDecodes = stStats.LabelDecodes - decodesBefore
	r.TaintScan.IndexEntries = stStats.IndexEntries
	r.TaintScan.LabeledObjects = stStats.LabeledObjects

	root := sys.Kern.RootContainer()
	for i := 0; i < 5; i++ {
		_, err := tc.SegmentCreate(root, taint, fmt.Sprintf("tainted-seg-%d", i), 256)
		must(err)
	}
	kids, err := tc.ContainerFindLabeled(kernel.Self(root), taint.Fingerprint())
	must(err)
	r.TaintScan.KernelMatches = len(kids)
}

// integrityRun measures the end-to-end integrity machinery on a
// FaultDisk-wrapped store: scrub throughput over a clean image, the latency
// from silent bit flip to quarantine on the first uncached access, and the
// cost of a recovery mount (referenced metadata area corrupted → previous
// snapshot loaded, full retained log replayed) against a clean mount of the
// same image.  Times are read off the virtual disk clock (the paper-disk
// latency model), not the host's wall clock, so every run of this section
// produces identical numbers.
func integrityRun(r *Report) {
	const (
		logSize  = 1 << 20
		metaSize = 1 << 20
		nObjects = 256
	)
	clk := &vclock.Clock{}
	params := disk.PaperDisk()
	params.Sectors = (32 << 20) / disk.SectorSize
	params.WriteCache = true
	base := disk.New(params, clk)
	fd := disk.NewFaultDisk(base)
	micros := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	st, err := store.Format(fd, store.Options{LogSize: logSize, MetaAreaSize: metaSize})
	must(err)

	// Generation 0: the victim and its cohort, checkpointed to home extents
	// (with contents CRCs) and never touched again.
	victimPattern := bytes.Repeat([]byte("INTEGRITY-BENCH-VICTIM"), 180)
	lbl := label.New(label.L1)
	for i := uint64(0); i < nObjects; i++ {
		payload := []byte(fmt.Sprintf("integrity object %d ", i))
		payload = append(payload, make([]byte, 4096-len(payload))...)
		must(st.PutLabeled(i, lbl, payload))
		must(st.SyncObject(i))
	}
	const victim = uint64(1000)
	must(st.PutLabeled(victim, lbl, victimPattern))
	must(st.SyncObject(victim))
	must(st.Checkpoint())
	// Generation 1 plus a tail of synced writes in the current log
	// generation, so a metadata fallback has records to replay.
	for i := uint64(0); i < 32; i++ {
		must(st.PutLabeled(i, lbl, []byte(fmt.Sprintf("integrity rewrite %d", i))))
		must(st.SyncObject(i))
	}
	must(st.Checkpoint())
	for i := uint64(nObjects); i < nObjects+16; i++ {
		must(st.PutLabeled(i, lbl, []byte(fmt.Sprintf("integrity tail %d", i))))
		must(st.SyncObject(i))
	}

	// Clean mount of the populated image.
	t0 := clk.Now()
	s2, err := store.Open(fd, store.Options{})
	must(err)
	r.Integrity.CleanOpenMicros = micros(clk.Now() - t0)
	if s2.RecoveryReport().Degraded() {
		panic("integrity bench: clean open reported degraded recovery")
	}

	// Scrub throughput over the intact image, in simulated disk time (the
	// pass is read-bound: both superblock copies, both metadata areas, and
	// every home extent).
	t0 = clk.Now()
	ss, err := s2.Scrub()
	must(err)
	scrubTime := clk.Now() - t0
	r.Integrity.ScrubBytes = ss.BytesVerified
	r.Integrity.ScrubObjectsChecked = ss.ObjectsChecked
	r.Integrity.ScrubMicros = micros(scrubTime)
	if scrubTime > 0 {
		r.Integrity.ScrubMBPerSec = float64(ss.BytesVerified) / (1 << 20) / scrubTime.Seconds()
	}

	// Detection latency: flip one bit in the victim's home extent (located
	// by its unique pattern, searched in the data region only — the log
	// also holds a copy inside the victim's sync record), evict the cache,
	// and time the Get that must notice and quarantine it.
	dataStart := int64(4096) + logSize + 2*metaSize
	raw := make([]byte, fd.Size()-dataStart)
	_, err = fd.ReadAt(raw, dataStart)
	must(err)
	pos := bytes.Index(raw, victimPattern)
	if pos < 0 {
		panic("integrity bench: victim extent not found on disk")
	}
	must(fd.RotBits(disk.Region{Off: dataStart + int64(pos), Len: int64(len(victimPattern))}, 1, 17))
	s2.EvictCache()
	t0 = clk.Now()
	_, err = s2.Get(victim)
	r.Integrity.DetectionLatencyMicros = micros(clk.Now() - t0)
	if !errors.Is(err, store.ErrQuarantined) {
		panic(fmt.Sprintf("integrity bench: corrupted victim read returned %v, want quarantine", err))
	}
	is := s2.IntegrityStats()
	r.Integrity.CorruptionsDetected = is.CorruptionsDetected
	r.Integrity.Quarantined = is.QuarantinedNow

	// Recovery mount: corrupt the referenced metadata area's header (the
	// superblock's `which` field, a little-endian u64 at byte 8, says which
	// of the two areas that is) and time the fallback open — previous
	// snapshot plus a full replay of the retained and current log
	// generations.
	var sbWhich [8]byte
	_, err = fd.ReadAt(sbWhich[:], 8)
	must(err)
	areaOff := int64(4096) + logSize + int64(binary.LittleEndian.Uint64(sbWhich[:]))*metaSize
	must(fd.RotBits(disk.Region{Off: areaOff, Len: 48}, 3, 7))
	t0 = clk.Now()
	s3, err := store.Open(fd, store.Options{})
	must(err)
	r.Integrity.FallbackOpenMicros = micros(clk.Now() - t0)
	rep := s3.RecoveryReport()
	if !rep.MetaFallback {
		panic(fmt.Sprintf("integrity bench: expected metadata fallback, got %+v", rep))
	}
	r.Integrity.FallbackRecordsReplayed = rep.WALRecordsReplayed
}

// checkpointStallRun measures what the incremental checkpoint protocol
// bought: a foreground loop times Put+SyncObject pairs while a background
// goroutine runs checkpoints back to back, so the recorded tail is the
// cost of a sync landing inside a checkpoint body.  This is the one
// histar-bench section that is intentionally NOT deterministic (see the
// StallReport doc).
func checkpointStallRun(r *Report) {
	clk := &vclock.Clock{}
	d := disk.New(disk.Params{Sectors: 1 << 17, WriteCache: true}, clk)
	st, err := store.Format(d, store.Options{
		LogSize:      2 << 20,
		MetaAreaSize: 1 << 20,
		SegmentSize:  64 << 10,
	})
	must(err)

	payload := make([]byte, 3000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	const nObjects = 64
	for i := uint64(0); i < nObjects; i++ {
		must(st.Put(i, payload))
		must(st.SyncObject(i))
	}
	must(st.Checkpoint())

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				must(st.Checkpoint())
			}
		}
	}()

	// Keep syncing until at least three checkpoints completed underneath the
	// loop (with a hard cap in case a slow machine starves the background
	// goroutine), so the measured tail genuinely overlaps checkpoint bodies.
	const minSyncs = 400
	ckptBase := st.Stats().Checkpoints
	lat := make([]time.Duration, 0, minSyncs)
	for i := 0; len(lat) < minSyncs || (st.Stats().Checkpoints < ckptBase+3 && i < 64*minSyncs); i++ {
		id := uint64(i % nObjects)
		must(st.Put(id, payload))
		t0 := time.Now()
		must(st.SyncObject(id))
		lat = append(lat, time.Since(t0))
	}
	close(stop)
	wg.Wait()

	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	ms := func(ns int64) float64 { return float64(ns) / float64(time.Millisecond) }
	ss := st.Stats()
	r.Stall = StallReport{
		Syncs:          len(lat),
		Checkpoints:    ss.Checkpoints,
		P50:            ms(int64(lat[len(lat)/2])),
		P99:            ms(int64(lat[len(lat)*99/100])),
		Max:            ms(int64(lat[len(lat)-1])),
		SealStallMax:   ms(ss.SealStallMaxNs),
		SealStallTotal: ms(ss.SealStallTotalNs),
	}
}

// segmentCleanerRun feeds the write-amplification and segment-cleaner
// sections from a single-threaded workload on the virtual disk clock, so
// unlike the stall section these numbers are byte-deterministic: a fixed
// object population is checkpointed into segments, rewritten once, then
// two of every three objects are deleted so the early segments cross the
// cleaner's copy-out threshold (live*2 < used), and two more checkpoints
// let the cleaner both copy out and free.
func segmentCleanerRun(r *Report) {
	clk := &vclock.Clock{}
	d := disk.New(disk.Params{Sectors: 1 << 17, WriteCache: true}, clk)
	st, err := store.Format(d, store.Options{
		LogSize:      2 << 20,
		MetaAreaSize: 1 << 20,
		SegmentSize:  64 << 10,
	})
	must(err)

	payload := make([]byte, 3000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	const nObjects = 64
	for i := uint64(0); i < nObjects; i++ {
		must(st.Put(i, payload))
		must(st.SyncObject(i))
	}
	must(st.Checkpoint())
	for i := uint64(0); i < nObjects; i++ {
		must(st.Put(i, payload))
		must(st.SyncObject(i))
	}
	must(st.Checkpoint())
	for i := uint64(0); i < nObjects; i++ {
		if i%3 != 0 {
			must(st.Delete(i))
		}
	}
	must(st.Checkpoint())
	must(st.Checkpoint())

	ss := st.Stats()
	r.WriteAmp = WriteAmpReport{
		BytesHome:        ss.BytesHome,
		BytesCleaned:     ss.BytesCleaned,
		MetaBytesWritten: ss.MetaBytesWritten,
	}
	if ss.BytesHome > 0 {
		r.WriteAmp.Ratio = float64(ss.BytesHome+ss.BytesCleaned+ss.MetaBytesWritten) / float64(ss.BytesHome)
	}
	r.SegCleaner = SegCleanerReport{
		SegsAllocated: ss.SegsAllocated,
		SegsCleaned:   ss.SegsCleaned,
		SegsFreed:     ss.SegsFreed,
		BytesCleaned:  ss.BytesCleaned,
		CRCBackfills:  ss.CRCBackfills,
	}
}

// webRun drives the webd load harness three times at equal concurrency: the
// per-request-login baseline; the mixed run over a larger population than
// the session cache holds (so it continuously pays evictions and cold
// logins on the uniform tail, plus periodic logouts); and the warm run,
// prewarmed with a hot set that fits the cache, measuring the steady state.
// The baseline gets proportionally fewer requests — it is orders of
// magnitude more expensive per request — since RPS normalizes the
// comparison.
func webRun(r *Report) {
	const (
		users       = 256
		concurrency = 8
	)
	baseline, err := webd.RunLoad(webd.LoadConfig{
		Users:       users,
		Requests:    400,
		Concurrency: concurrency,
		Seed:        9,
		Server:      webd.Config{DisableSessionCache: true},
	})
	must(err)
	mixed, err := webd.RunLoad(webd.LoadConfig{
		Users:       users,
		Requests:    4000,
		Concurrency: concurrency,
		LogoutEvery: 500,
		Seed:        9,
		Server:      webd.Config{MaxSessions: 192, Lanes: 4, MaxBatch: 16},
	})
	must(err)
	warm, err := webd.RunLoad(webd.LoadConfig{
		Users:       users,
		Requests:    8000,
		Concurrency: concurrency,
		HotUsers:    96,
		HotFraction: 1.0,
		Prewarm:     true,
		Seed:        9,
		Server:      webd.Config{MaxSessions: 192, Lanes: 4, MaxBatch: 16},
	})
	must(err)
	if baseline.Errors > 0 || mixed.Errors > 0 || warm.Errors > 0 {
		panic(fmt.Sprintf("web bench: request errors (baseline %d, mixed %d, warm %d)",
			baseline.Errors, mixed.Errors, warm.Errors))
	}
	r.Web = WebReport{Baseline: *baseline, Mixed: *mixed, Warm: *warm}
	if baseline.RPS > 0 {
		r.Web.MixedSpeedup = mixed.RPS / baseline.RPS
		r.Web.WarmSpeedup = warm.RPS / baseline.RPS
	}
}

// snapshotRun measures the container snapshot/clone machinery: how fast the
// kernel captures a 64 MiB sandbox subtree and how fast golden-image spawns
// clone it, against the from-scratch sandbox build they replace; then the
// webd cold-user blend (population ≫ session cache, so evictions keep the
// cold-login path hot) with scratch-built vs golden-cloned sandboxes.
func snapshotRun(r *Report) {
	const (
		sandboxBytes = 64 << 20
		nColdSpawns  = 4
		nSnapshots   = 16
		nClones      = 32
	)
	sys, err := unixlib.Boot(unixlib.BootOptions{KernelConfig: kernel.Config{Seed: 11}})
	must(err)
	tc := sys.InitThread()
	root := sys.Kern.RootContainer()

	tmpl, err := sys.AddUser("goldentmpl")
	must(err)
	img, err := sys.BakeGoldenData("bench-sandbox", tmpl, sandboxBytes)
	must(err)
	r.Snapshot.SandboxBytes = img.Bytes
	r.Snapshot.SandboxObjects = img.Objects

	// Capture rate: re-snapshot the baked subtree under distinct names (each
	// a fresh lineage, so nothing is answered from the idempotence check).
	imgCE := kernel.CEnt{Container: root, Object: img.Root}
	t0 := time.Now()
	for i := 0; i < nSnapshots; i++ {
		_, err := tc.ContainerSnapshot(imgCE, fmt.Sprintf("bench-recapture-%d", i))
		must(err)
	}
	if el := time.Since(t0); el > 0 {
		r.Snapshot.SnapshotsPerSec = nSnapshots / el.Seconds()
	}

	// Cold-spawn baseline: build the same sandbox from scratch, creating and
	// writing every byte.
	spawns, err := tc.ContainerCreate(root, label.New(label.L1), "bench spawns", 0, kernel.QuotaInfinite)
	must(err)
	cold := make([]time.Duration, nColdSpawns)
	for i := range cold {
		t0 := time.Now()
		_, err := sys.BuildSandboxScratch(tc, spawns, nil, sandboxBytes)
		must(err)
		cold[i] = time.Since(t0)
	}

	// Golden spawns: one O(metadata) clone per user, categories remapped.
	golden := make([]time.Duration, nClones)
	t0 = time.Now()
	for i := range golden {
		u, err := sys.AddUser(fmt.Sprintf("spawnuser%d", i))
		must(err)
		s0 := time.Now()
		_, err = sys.SpawnFromGolden(tc, img, spawns, u)
		must(err)
		golden[i] = time.Since(s0)
	}
	if el := time.Since(t0); el > 0 {
		r.Snapshot.ClonesPerSec = nClones / el.Seconds()
	}

	coldP50, coldP99 := durPercentiles(cold)
	goldP50, goldP99 := durPercentiles(golden)
	micros := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	r.Snapshot.ColdSpawnP50Micros, r.Snapshot.ColdSpawnP99Micros = micros(coldP50), micros(coldP99)
	r.Snapshot.GoldenSpawnP50Micros, r.Snapshot.GoldenSpawnP99Micros = micros(goldP50), micros(goldP99)
	if goldP50 > 0 {
		r.Snapshot.SpawnSpeedupP50 = float64(coldP50) / float64(goldP50)
	}
	ss := sys.Kern.SnapshotStats()
	r.Snapshot.BytesShared = ss.SharedBytes
	r.Snapshot.BytesCopied = ss.CopiedBytes
	r.Snapshot.COWBreaks = ss.CowBreaks

	// The webd cold-user blend: 48 users over a 12-session cache means the
	// uniform traffic never stops paying cold logins, which is exactly where
	// the sandbox build sits.  Same blend, scratch vs golden.
	blend := func(goldenImage bool) *webd.LoadReport {
		rep, err := webd.RunLoad(webd.LoadConfig{
			Users:        48,
			Requests:     600,
			Concurrency:  8,
			Seed:         11,
			SandboxBytes: 1 << 20,
			GoldenImage:  goldenImage,
			Server:       webd.Config{MaxSessions: 12, Lanes: 4, MaxBatch: 16},
		})
		must(err)
		if rep.Errors > 0 {
			panic(fmt.Sprintf("snapshot bench: %d web request errors (golden=%v)", rep.Errors, goldenImage))
		}
		return rep
	}
	scratch := blend(false)
	goldenRep := blend(true)
	r.Snapshot.WebScratch, r.Snapshot.WebGolden = *scratch, *goldenRep
	if scratch.RPS > 0 {
		r.Snapshot.WebColdUserSpeedup = goldenRep.RPS / scratch.RPS
	}
}

// durPercentiles returns the p50 and p99 of a latency sample (sorted copy).
func durPercentiles(d []time.Duration) (p50, p99 time.Duration) {
	s := append([]time.Duration(nil), d...)
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	return s[len(s)/2], s[len(s)*99/100]
}

// groupCommitRun runs a parallel Put+SyncObject workload directly against a
// store and records the write-ahead log commit savings.
func groupCommitRun(r *Report) {
	clk := &vclock.Clock{}
	params := disk.PaperDisk()
	params.Sectors = (1 << 30) / disk.SectorSize
	params.WriteCache = true
	d := disk.New(params, clk)
	st, err := store.Format(d, store.Options{LogSize: 32 << 20})
	must(err)

	const (
		workers     = 8
		syncsPerJob = 200
	)
	var wg sync.WaitGroup
	payload := make([]byte, 1024)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) << 32
			for i := 0; i < syncsPerJob; i++ {
				id := base + uint64(i%64)
				must(st.Put(id, payload))
				must(st.SyncObject(id))
			}
		}(w)
	}
	wg.Wait()

	stats := st.Stats()
	gs := st.GroupCommitStats()
	r.GroupCommit = GroupCommitReport{
		Syncs:          stats.ObjectSyncs,
		WALCommits:     stats.WALCommits,
		CommitsPerSync: float64(stats.WALCommits) / float64(stats.ObjectSyncs),
		MaxBatch:       gs.MaxBatch,
	}
}

func groupVsPerFileSync() float64 {
	run := func(group bool) time.Duration {
		clk := &vclock.Clock{}
		params := disk.PaperDisk()
		params.Sectors = (1 << 30) / disk.SectorSize
		params.WriteCache = true
		d := disk.New(params, clk)
		st, err := store.Format(d, store.Options{LogSize: 32 << 20})
		must(err)
		sys, err := unixlib.Boot(unixlib.BootOptions{Persist: st, KernelConfig: kernel.Config{Seed: 3}})
		must(err)
		p, err := sys.NewInitProcess("bench")
		must(err)
		payload := make([]byte, 1024)
		clk.Reset()
		for i := 0; i < 200; i++ {
			path := fmt.Sprintf("/tmp/f%d", i)
			must(p.WriteFile(path, payload, label.New(label.L1)))
			if !group {
				must(p.FsyncPath(path))
			}
		}
		if group {
			must(p.GroupSync())
		}
		return clk.Now()
	}
	perFile := run(false)
	groupSync := run(true)
	if groupSync == 0 {
		return 0
	}
	return float64(perFile) / float64(groupSync)
}

func printReport(r *Report) {
	fmt.Println("HiStar reproduction — evaluation index (see EXPERIMENTS.md for details)")
	fmt.Println()
	for _, row := range evalRows {
		fmt.Printf("  %-55s paper: %-45s target: %s\n", row[0], row[1], row[2])
	}
	fmt.Println()
	fmt.Printf("E13 syscall counts: fork/exec=%d, spawn=%d (paper: 317 vs 127; Linux 9)\n",
		r.ForkExecSyscalls, r.SpawnSyscalls)
	fmt.Printf("Label cache: %d hits / %d misses (%.1f%% hit rate), %d entries evicted, %d/%d shards active\n",
		r.LabelCache.Hits, r.LabelCache.Misses, r.LabelCache.HitRate,
		r.LabelCache.Evictions, r.LabelCache.ActiveShards, r.LabelCache.TotalShards)
	fmt.Printf("Per-thread L1: %d hits / %d misses (%.1f%% hit rate), %d live threads\n",
		r.LabelL1.Hits, r.LabelL1.Misses, r.LabelL1.HitRate, r.LabelL1.Threads)
	fmt.Printf("E4 durability shapes: per-file sync is %.0fx slower than group sync for small-file creates (paper: up to ~200x)\n",
		r.PerFileOverGroupSync)
	fmt.Printf("Store group commit: %d syncs → %d WAL commits (%.2f commits/sync, max batch %d records, GOMAXPROCS=%d)\n",
		r.GroupCommit.Syncs, r.GroupCommit.WALCommits, r.GroupCommit.CommitsPerSync,
		r.GroupCommit.MaxBatch, r.GoMaxProcs)
	fmt.Printf("Syscall ring: %d entries over %d waits (depth %.1f), %d lock runs + %d coalesced entries (%.1f%% coalesced)\n",
		r.Ring.Entries, r.Ring.Waits, r.Ring.Depth, r.Ring.Runs, r.Ring.Coalesced, r.Ring.CoalesceRate)
	fmt.Printf("  ring sync fan-out: %d syncs in %d groups → %d WAL commits (%.2f commits/sync at %d records/batch)\n",
		r.Ring.SyncEntries, r.Ring.SyncGroups, r.Ring.WALCommits, r.Ring.CommitsPerSync, r.Ring.BatchRecords)
	fmt.Printf("Store label index: %d objects tainted, %d label decodes during the scan (%d index entries over %d labeled objects)\n",
		r.TaintScan.TaintedObjects, r.TaintScan.LabelDecodes, r.TaintScan.IndexEntries, r.TaintScan.LabeledObjects)
	fmt.Printf("Kernel container_find_labeled: %d objects with the taint fingerprint directly in the root container\n",
		r.TaintScan.KernelMatches)
	fmt.Printf("Integrity (simulated disk time): scrub %.1f MB/s (%d bytes, %d objects, %.0fus), bit-flip detected+quarantined in %.1fus on first access\n",
		r.Integrity.ScrubMBPerSec, r.Integrity.ScrubBytes, r.Integrity.ScrubObjectsChecked,
		r.Integrity.ScrubMicros, r.Integrity.DetectionLatencyMicros)
	fmt.Printf("  recovery mount: clean open %.0fus vs fallback open %.0fus (previous snapshot + %d log records replayed); %d corruptions detected, %d quarantined\n",
		r.Integrity.CleanOpenMicros, r.Integrity.FallbackOpenMicros, r.Integrity.FallbackRecordsReplayed,
		r.Integrity.CorruptionsDetected, r.Integrity.Quarantined)
	fmt.Printf("Checkpoint stall (wall clock): %d syncs vs %d concurrent checkpoints — sync p50 %.3fms / p99 %.3fms / max %.3fms; seal stall max %.3fms, total %.3fms\n",
		r.Stall.Syncs, r.Stall.Checkpoints, r.Stall.P50, r.Stall.P99, r.Stall.Max,
		r.Stall.SealStallMax, r.Stall.SealStallTotal)
	fmt.Printf("Write amplification: %.2fx (home %d + cleaned %d + meta %d bytes over home)\n",
		r.WriteAmp.Ratio, r.WriteAmp.BytesHome, r.WriteAmp.BytesCleaned, r.WriteAmp.MetaBytesWritten)
	fmt.Printf("Segment cleaner: %d segments allocated, %d copied out, %d freed (%d bytes relocated); %d CRC backfills\n",
		r.SegCleaner.SegsAllocated, r.SegCleaner.SegsCleaned, r.SegCleaner.SegsFreed,
		r.SegCleaner.BytesCleaned, r.SegCleaner.CRCBackfills)
	fmt.Printf("Web service (wall clock, %d users, %d clients): per-request login %.0f req/s (p99 %.0fus) vs session-cached mixed %.0f req/s (p99 %.0fus, %.1fx) vs warm %.0f req/s (p99 %.0fus, %.1fx)\n",
		r.Web.Mixed.Users, r.Web.Mixed.Concurrency,
		r.Web.Baseline.RPS, r.Web.Baseline.P99Micros,
		r.Web.Mixed.RPS, r.Web.Mixed.P99Micros, r.Web.MixedSpeedup,
		r.Web.Warm.RPS, r.Web.Warm.P99Micros, r.Web.WarmSpeedup)
	fmt.Printf("Golden-image spawn (wall clock, %d MiB sandbox, %d objects): scratch build p50 %.0fus vs clone p50 %.0fus (%.0fx); %.0f snapshots/s, %.0f clones/s; %d bytes shared vs %d copied (%d COW breaks)\n",
		r.Snapshot.SandboxBytes>>20, r.Snapshot.SandboxObjects,
		r.Snapshot.ColdSpawnP50Micros, r.Snapshot.GoldenSpawnP50Micros, r.Snapshot.SpawnSpeedupP50,
		r.Snapshot.SnapshotsPerSec, r.Snapshot.ClonesPerSec,
		r.Snapshot.BytesShared, r.Snapshot.BytesCopied, r.Snapshot.COWBreaks)
	fmt.Printf("  webd cold-user blend: scratch sandboxes %.0f req/s vs golden clones %.0f req/s (%.1fx; %d golden spawns, %d scratch spawns)\n",
		r.Snapshot.WebScratch.RPS, r.Snapshot.WebGolden.RPS, r.Snapshot.WebColdUserSpeedup,
		r.Snapshot.WebGolden.GoldenSpawns, r.Snapshot.WebScratch.ScratchSpawns)
	fmt.Printf("  mixed session cache: %.1f%% hit rate (%d hits / %d misses), %d cold logins, %d evictions, %d logouts; %d gate calls over %d ring waits\n",
		100*r.Web.Mixed.HitRate, r.Web.Mixed.Sessions.Hits, r.Web.Mixed.Sessions.Misses,
		r.Web.Mixed.Sessions.ColdLogins, r.Web.Mixed.Sessions.Evictions,
		r.Web.Mixed.Sessions.Logouts, r.Web.Mixed.RingGateCalls, r.Web.Mixed.RingWaits)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
