// Command histar-bench regenerates the paper's evaluation tables in textual
// form.  It prints, for every row of Figure 12 and Figure 13, the paper's
// measured value and the `go test -bench` target in this repository that
// reproduces it, and runs the quick in-process experiments (syscall counts
// per process-creation primitive, group-sync vs per-file-sync ratio) whose
// results are shown inline.  Run the full harness with:
//
//	go test -bench=. -benchmem -benchtime=1x .
package main

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"histar/internal/disk"
	"histar/internal/kernel"
	"histar/internal/label"
	"histar/internal/store"
	"histar/internal/unixlib"
	"histar/internal/vclock"
)

func main() {
	fmt.Println("HiStar reproduction — evaluation index (see EXPERIMENTS.md for details)")
	fmt.Println()
	rows := [][3]string{
		{"Fig 12: IPC round trip", "HiStar 3.11us / Linux 4.32us / OpenBSD 2.13us", "BenchmarkFig12_IPC_*"},
		{"Fig 12: fork/exec", "HiStar 1.35ms / Linux+OpenBSD 0.18ms", "BenchmarkFig12_ForkExec_*"},
		{"Fig 12: spawn", "HiStar 0.47ms", "BenchmarkFig12_Spawn_HiStar"},
		{"Fig 12: LFS small create (async/sync/group)", "0.31s / 459s / 2.57s (HiStar)", "BenchmarkFig12_LFSSmallCreate_*"},
		{"Fig 12: LFS small read (cached/uncached/no-prefetch)", "0.16s / 6.49s / 86.4s (HiStar)", "BenchmarkFig12_LFSSmallRead_*"},
		{"Fig 12: LFS small unlink (async/sync/group)", "0.09s / 456s / 0.38s (HiStar)", "BenchmarkFig12_LFSSmallUnlink_*"},
		{"Fig 12: LFS large seq write / sync rand write / read", "2.14s / 93.0s / 1.96s (HiStar)", "BenchmarkFig12_LFSLarge*"},
		{"Fig 13: building the kernel", "HiStar 6.2s / Linux 4.7s / OpenBSD 6.0s", "BenchmarkFig13_Build_*"},
		{"Fig 13: wget 100MB", "9.1s / 9.0s / 9.0s (link-saturated)", "BenchmarkFig13_Wget100MB_HiStar"},
		{"Fig 13: virus-scan 100MB (plain / with wrap)", "18.7s / 18.7s (HiStar)", "BenchmarkFig13_VirusScan_*"},
		{"Sec 4.1: code size inventory", "15,200 C lines (kernel)", "go run ./cmd/loc"},
	}
	for _, r := range rows {
		fmt.Printf("  %-55s paper: %-45s target: %s\n", r[0], r[1], r[2])
	}
	fmt.Println()

	// E13: syscalls per process-creation primitive.
	sys, err := unixlib.Boot(unixlib.BootOptions{KernelConfig: kernel.Config{Seed: 2}})
	must(err)
	must(sys.RegisterProgram("/bin/true", func(p *unixlib.Process, args []string) int { return 0 }))
	p, err := sys.NewInitProcess("bench")
	must(err)
	sys.Kern.ResetSyscallCounts()
	child, err := p.Fork()
	must(err)
	must(child.Exec("/bin/true", nil))
	p.Wait(child)
	forkExec := sys.Kern.SyscallTotal()
	sys.Kern.ResetSyscallCounts()
	child2, err := p.Spawn("/bin/true", nil)
	must(err)
	p.Wait(child2)
	spawn := sys.Kern.SyscallTotal()
	fmt.Printf("E13 syscall counts: fork/exec=%d, spawn=%d (paper: 317 vs 127; Linux 9)\n", forkExec, spawn)

	// Label comparison-cache behaviour over the run above (Section 4's
	// immutable-label memoization).  Eviction counts are per shard: a full
	// shard discards only its own entries, never the whole working set.
	cs := sys.Kern.LabelCacheStats()
	used, maxEntries := 0, 0
	var maxEvict uint64
	for _, sh := range cs.Shards {
		if sh.Entries > 0 || sh.Hits+sh.Misses > 0 {
			used++
		}
		if sh.Entries > maxEntries {
			maxEntries = sh.Entries
		}
		if sh.Evictions > maxEvict {
			maxEvict = sh.Evictions
		}
	}
	hitRate := 0.0
	if cs.Hits+cs.Misses > 0 {
		hitRate = 100 * float64(cs.Hits) / float64(cs.Hits+cs.Misses)
	}
	fmt.Printf("Label cache: %d hits / %d misses (%.1f%% hit rate), %d entries evicted\n",
		cs.Hits, cs.Misses, hitRate, cs.Evictions)
	fmt.Printf("Label cache shards: %d/%d active, largest shard %d entries, worst per-shard evictions %d\n",
		used, len(cs.Shards), maxEntries, maxEvict)

	// Per-thread L1 in front of the sharded cache: the hottest canObserve
	// checks are answered from a lock-free per-thread array; the shard
	// mutexes above are only touched on L1 misses.
	l1 := sys.Kern.LabelL1Stats()
	l1Rate := 0.0
	if l1.Hits+l1.Misses > 0 {
		l1Rate = 100 * float64(l1.Hits) / float64(l1.Hits+l1.Misses)
	}
	fmt.Printf("Per-thread L1: %d hits / %d misses (%.1f%% hit rate), %d live threads\n",
		l1.Hits, l1.Misses, l1Rate, len(l1.Threads))
	for _, ts := range l1.Threads {
		if ts.Hits+ts.Misses == 0 {
			continue
		}
		fmt.Printf("  thread %-24q %6.1f%% L1 hit rate (%d lookups)\n",
			ts.Descrip, 100*float64(ts.Hits)/float64(ts.Hits+ts.Misses), ts.Hits+ts.Misses)
	}

	// E4/E6 quick shape check: group sync vs per-file sync on 200 files.
	ratio := groupVsPerFileSync()
	fmt.Printf("E4 durability shapes: per-file sync is %.0fx slower than group sync for small-file creates (paper: up to ~200x)\n", ratio)

	// Concurrent store: group-commit batching and shard spread under
	// parallel SyncObject traffic (the PR 4 store refactor).  Batches larger
	// than one record require syncers to overlap inside the committer, which
	// needs GOMAXPROCS > 1 on real cores; the histogram makes the achieved
	// overlap visible either way.
	groupCommitReport()

	// Tainted-object scans off the fingerprint-keyed label index: the store
	// answers "every object tainted by category c" without deserializing a
	// single label, and the kernel's container_find_labeled does the same
	// scan over live kernel objects from precomputed fingerprints.
	taintedObjectScan()
}

func taintedObjectScan() {
	clk := &vclock.Clock{}
	params := disk.PaperDisk()
	params.Sectors = (1 << 30) / disk.SectorSize
	params.WriteCache = true
	d := disk.New(params, clk)
	st, err := store.Format(d, store.Options{LogSize: 32 << 20})
	must(err)
	sys, err := unixlib.Boot(unixlib.BootOptions{Persist: st, KernelConfig: kernel.Config{Seed: 4}})
	must(err)
	p, err := sys.NewInitProcess("scan")
	must(err)
	tc := p.TC
	cat, err := tc.CategoryCreateNamed("taint")
	must(err)
	taint := label.New(label.L1, label.P(cat, label.L3))
	plain := label.New(label.L1)
	payload := make([]byte, 512)
	for i := 0; i < 40; i++ {
		lbl := plain
		if i%4 == 0 {
			lbl = taint
		}
		must(p.WriteFile(fmt.Sprintf("/tmp/s%d", i), payload, lbl))
	}
	must(p.FsyncPath("/tmp/s0")) // push at least one labeled record through the log

	decodesBefore := st.Stats().LabelDecodes
	ids := st.ObjectsWithLabel(taint.Fingerprint())
	stStats := st.Stats()
	fmt.Printf("Store label index: %d objects tainted by %v, %d label decodes during the scan (%d index entries over %d labeled objects)\n",
		len(ids), cat, stStats.LabelDecodes-decodesBefore, stStats.IndexEntries, stStats.LabeledObjects)

	root := sys.Kern.RootContainer()
	for i := 0; i < 5; i++ {
		_, err := tc.SegmentCreate(root, taint, fmt.Sprintf("tainted-seg-%d", i), 256)
		must(err)
	}
	kids, err := tc.ContainerFindLabeled(kernel.Self(root), taint.Fingerprint())
	must(err)
	fmt.Printf("Kernel container_find_labeled: %d objects with the taint fingerprint directly in the root container\n", len(kids))
}

// groupCommitReport runs a parallel Put+SyncObject workload directly against
// a store and prints the write-ahead log commit savings, the batch-size
// histogram, and the shard occupancy/operation spread.
func groupCommitReport() {
	clk := &vclock.Clock{}
	params := disk.PaperDisk()
	params.Sectors = (1 << 30) / disk.SectorSize
	params.WriteCache = true
	d := disk.New(params, clk)
	st, err := store.Format(d, store.Options{LogSize: 32 << 20})
	must(err)

	const (
		workers     = 8
		syncsPerJob = 200
	)
	var wg sync.WaitGroup
	payload := make([]byte, 1024)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) << 32
			for i := 0; i < syncsPerJob; i++ {
				id := base + uint64(i%64)
				must(st.Put(id, payload))
				must(st.SyncObject(id))
			}
		}(w)
	}
	wg.Wait()

	stats := st.Stats()
	fmt.Printf("Store group commit: %d syncs → %d WAL commits (%.2f commits/sync, GOMAXPROCS=%d)\n",
		stats.ObjectSyncs, stats.WALCommits, float64(stats.WALCommits)/float64(stats.ObjectSyncs), runtime.GOMAXPROCS(0))
	gs := st.GroupCommitStats()
	labels := []string{"1", "2", "3-4", "5-8", "9-16", "17-32", "33-64", "65+"}
	fmt.Printf("  batch-size histogram:")
	for i, n := range gs.Hist {
		if n > 0 {
			fmt.Printf("  [%s]=%d", labels[i], n)
		}
	}
	fmt.Printf("  (max batch %d records)\n", gs.MaxBatch)

	shards := st.ShardStats()
	used, maxOps, minOps, maxObjs := 0, uint64(0), ^uint64(0), 0
	for _, sh := range shards {
		if sh.Ops > 0 {
			used++
		}
		if sh.Ops > maxOps {
			maxOps = sh.Ops
		}
		if sh.Ops < minOps {
			minOps = sh.Ops
		}
		if sh.Objects > maxObjs {
			maxObjs = sh.Objects
		}
	}
	fmt.Printf("  store shards: %d/%d active, ops spread min %d / max %d per shard, largest shard %d objects\n",
		used, len(shards), minOps, maxOps, maxObjs)
}

func groupVsPerFileSync() float64 {
	run := func(group bool) time.Duration {
		clk := &vclock.Clock{}
		params := disk.PaperDisk()
		params.Sectors = (1 << 30) / disk.SectorSize
		params.WriteCache = true
		d := disk.New(params, clk)
		st, err := store.Format(d, store.Options{LogSize: 32 << 20})
		must(err)
		sys, err := unixlib.Boot(unixlib.BootOptions{Persist: st, KernelConfig: kernel.Config{Seed: 3}})
		must(err)
		p, err := sys.NewInitProcess("bench")
		must(err)
		payload := make([]byte, 1024)
		clk.Reset()
		for i := 0; i < 200; i++ {
			path := fmt.Sprintf("/tmp/f%d", i)
			must(p.WriteFile(path, payload, label.New(label.L1)))
			if !group {
				must(p.FsyncPath(path))
			}
		}
		if group {
			must(p.GroupSync())
		}
		return clk.Now()
	}
	perFile := run(false)
	groupSync := run(true)
	if groupSync == 0 {
		return 0
	}
	return float64(perFile) / float64(groupSync)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
