// Command loc reproduces the Section 4.1 code-size inventory: it counts the
// lines of Go in each subsystem of this reproduction and groups them into
// the paper's trusted-kernel components versus the untrusted user-level
// library and applications, printing a table alongside the paper's numbers.
package main

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

var groups = map[string]string{
	"internal/label":    "trusted kernel: label algebra",
	"internal/kernel":   "trusted kernel: objects + system calls",
	"internal/btree":    "trusted kernel: B+-trees",
	"internal/wal":      "trusted kernel: write-ahead log",
	"internal/store":    "trusted kernel: single-level store",
	"internal/disk":     "simulated hardware: disk",
	"internal/netsim":   "simulated hardware: network",
	"internal/vclock":   "simulated hardware: clock",
	"internal/unixlib":  "untrusted library: Unix emulation",
	"internal/netd":     "untrusted library: network daemon",
	"internal/auth":     "application: authentication",
	"internal/clamav":   "application: ClamAV + wrap",
	"internal/vpn":      "application: VPN isolation",
	"internal/webd":     "application: web services",
	"internal/baseline": "evaluation: Linux/OpenBSD baseline model",
}

func countLines(dir string, includeTests bool) (code, tests int) {
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := os.Open(path)
		if err != nil {
			return nil
		}
		defer f.Close()
		n := 0
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			if strings.TrimSpace(sc.Text()) != "" {
				n++
			}
		}
		if strings.HasSuffix(path, "_test.go") {
			tests += n
		} else {
			code += n
		}
		return nil
	})
	return code, tests
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	fmt.Println("Code-size inventory (cf. paper Section 4.1: 15,200 lines of C kernel,")
	fmt.Println("~10,000 lines of Unix library, 110-line wrap, 58/188/233-line auth parts)")
	fmt.Println()
	fmt.Printf("%-48s %10s %10s\n", "subsystem", "code LoC", "test LoC")
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var totalCode, totalTests int
	for _, dir := range keys {
		code, tests := countLines(filepath.Join(root, dir), true)
		totalCode += code
		totalTests += tests
		fmt.Printf("%-48s %10d %10d\n", groups[dir]+" ("+dir+")", code, tests)
	}
	fmt.Printf("%-48s %10d %10d\n", "TOTAL", totalCode, totalTests)
}
