package histar

// The benchmark harness regenerates the paper's evaluation (Section 7):
// every row of Figure 12 (microbenchmarks) and Figure 13 (application
// benchmarks) has a benchmark here, for HiStar and — where the paper
// compares — for the Linux-like baseline model, plus ablation benchmarks for
// the design choices called out in DESIGN.md.  Disk- and network-bound rows
// report *simulated* time (the latency model of internal/disk and
// internal/netsim) via the sim-ms metric; CPU-bound rows report ordinary
// wall-clock ns/op.  EXPERIMENTS.md records paper-vs-measured values.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"histar/internal/baseline"
	"histar/internal/clamav"
	"histar/internal/disk"
	"histar/internal/kernel"
	"histar/internal/label"
	"histar/internal/netd"
	"histar/internal/netsim"
	"histar/internal/store"
	"histar/internal/unixlib"
	"histar/internal/vclock"
)

// ---------------------------------------------------------------------------
// Harness helpers.
// ---------------------------------------------------------------------------

// paperDiskParams returns the evaluation disk with the write cache enabled
// (both systems use the cache; synchronous benchmarks flush it explicitly).
func paperDiskParams() disk.Params {
	p := disk.PaperDisk()
	p.Sectors = (2 << 30) / disk.SectorSize // a 2 GB slice of the 40 GB disk keeps memory use sane
	p.WriteCache = true
	return p
}

// histarRig is a booted HiStar system with a persistent single-level store.
type histarRig struct {
	sys *unixlib.System
	st  *store.Store
	d   *disk.Disk
	clk *vclock.Clock
	p   *unixlib.Process
}

func newHiStarRig(b *testing.B, persist bool) *histarRig {
	b.Helper()
	rig := &histarRig{clk: &vclock.Clock{}}
	if persist {
		d := disk.New(paperDiskParams(), rig.clk)
		st, err := store.Format(d, store.Options{LogSize: 64 << 20})
		if err != nil {
			b.Fatal(err)
		}
		rig.st = st
		rig.d = d
	}
	sys, err := unixlib.Boot(unixlib.BootOptions{Persist: rig.st, KernelConfig: kernel.Config{Seed: 42}})
	if err != nil {
		b.Fatal(err)
	}
	rig.sys = sys
	proc, err := sys.NewInitProcess("bench")
	if err != nil {
		b.Fatal(err)
	}
	rig.p = proc
	return rig
}

func newBaselineRig(b *testing.B, v baseline.Variant) (*baseline.OS, *vclock.Clock) {
	b.Helper()
	clk := &vclock.Clock{}
	d := disk.New(paperDiskParams(), clk)
	return baseline.New(d, clk, v), clk
}

// reportSim attaches the simulated elapsed time (in milliseconds per
// benchmark iteration) to the benchmark result.
func reportSim(b *testing.B, clk *vclock.Clock, iters int) {
	b.ReportMetric(float64(clk.Now().Milliseconds())/float64(iters), "sim-ms/op")
}

// ---------------------------------------------------------------------------
// Figure 12 row 1: IPC benchmark — 8-byte round trip over a pipe pair.
// Paper: HiStar 3.11 µs, Linux 4.32 µs, OpenBSD 2.13 µs.
// ---------------------------------------------------------------------------

func BenchmarkFig12_IPC_HiStar(b *testing.B) {
	rig := newHiStarRig(b, false)
	p := rig.p
	r1, w1, err := p.Pipe()
	if err != nil {
		b.Fatal(err)
	}
	r2, w2, err := p.Pipe()
	if err != nil {
		b.Fatal(err)
	}
	// Echo server: reads from pipe 1, writes to pipe 2.
	go func() {
		buf := make([]byte, 8)
		for {
			n, err := p.Read(r1, buf)
			if err != nil || n == 0 {
				return
			}
			if _, err := p.Write(w2, buf[:n]); err != nil {
				return
			}
		}
	}()
	msg := []byte("8bytes!!")
	buf := make([]byte, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Write(w1, msg); err != nil {
			b.Fatal(err)
		}
		if _, err := p.Read(r2, buf); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	p.Close(w1)
}

func BenchmarkFig12_IPC_LinuxBaseline(b *testing.B) {
	o, _ := newBaselineRig(b, baseline.VariantLinux)
	p1 := o.NewPipe()
	p2 := o.NewPipe()
	go func() {
		for {
			m := p1.Read()
			if m == nil {
				return
			}
			p2.Write(m)
		}
	}()
	msg := []byte("8bytes!!")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p1.Write(msg)
		p2.Read()
	}
}

// ---------------------------------------------------------------------------
// Figure 12 rows 2–4: fork/exec and spawn of /bin/true.
// Paper: HiStar fork/exec 1.35 ms (317 syscalls), spawn 0.47 ms (127
// syscalls); Linux/OpenBSD fork/exec 0.18 ms (9 syscalls).
// ---------------------------------------------------------------------------

func BenchmarkFig12_ForkExec_HiStar(b *testing.B) {
	rig := newHiStarRig(b, false)
	rig.sys.RegisterProgram("/bin/true", func(p *unixlib.Process, args []string) int { return 0 })
	p := rig.p
	rig.sys.Kern.ResetSyscallCounts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		child, err := p.Fork()
		if err != nil {
			b.Fatal(err)
		}
		if err := child.Exec("/bin/true", nil); err != nil {
			b.Fatal(err)
		}
		if _, err := p.Wait(child); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(rig.sys.Kern.SyscallTotal())/float64(b.N), "syscalls/op")
}

func BenchmarkFig12_Spawn_HiStar(b *testing.B) {
	rig := newHiStarRig(b, false)
	rig.sys.RegisterProgram("/bin/true", func(p *unixlib.Process, args []string) int { return 0 })
	p := rig.p
	rig.sys.Kern.ResetSyscallCounts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		child, err := p.Spawn("/bin/true", nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Wait(child); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(rig.sys.Kern.SyscallTotal())/float64(b.N), "syscalls/op")
}

func BenchmarkFig12_ForkExec_LinuxBaseline(b *testing.B) {
	o, _ := newBaselineRig(b, baseline.VariantLinux)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.ForkExec()
	}
	b.StopTimer()
	b.ReportMetric(float64(o.Syscalls())/float64(b.N), "syscalls/op")
}

// ---------------------------------------------------------------------------
// Figure 12 rows 5–13: LFS small-file benchmark — create, read, unlink
// nSmallFiles 1 kB files under the listed durability modes.  The paper uses
// 10,000 files; the harness uses 1,000 per iteration and reports simulated
// seconds scaled to the paper's 10,000 in EXPERIMENTS.md.
// ---------------------------------------------------------------------------

const nSmallFiles = 1000

func smallFilePath(i int) string { return fmt.Sprintf("/tmp/lfs/f%04d", i) }

func lfsCreateHiStar(b *testing.B, mode string) {
	rig := newHiStarRig(b, true)
	p := rig.p
	if err := p.Mkdir("/tmp/lfs", label.New(label.L1)); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1024)
	rig.clk.Reset()
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		for i := 0; i < nSmallFiles; i++ {
			path := smallFilePath(i + iter*nSmallFiles)
			if err := p.WriteFile(path, payload, label.New(label.L1)); err != nil {
				b.Fatal(err)
			}
			if mode == "per-file-sync" {
				if err := p.FsyncPath(path); err != nil {
					b.Fatal(err)
				}
			}
		}
		if mode == "group-sync" {
			if err := p.GroupSync(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	reportSim(b, rig.clk, b.N)
}

func BenchmarkFig12_LFSSmallCreate_Async_HiStar(b *testing.B) { lfsCreateHiStar(b, "async") }
func BenchmarkFig12_LFSSmallCreate_PerFileSync_HiStar(b *testing.B) {
	lfsCreateHiStar(b, "per-file-sync")
}
func BenchmarkFig12_LFSSmallCreate_GroupSync_HiStar(b *testing.B) { lfsCreateHiStar(b, "group-sync") }

func lfsCreateBaseline(b *testing.B, sync bool) {
	o, clk := newBaselineRig(b, baseline.VariantLinux)
	payload := make([]byte, 1024)
	clk.Reset()
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		for i := 0; i < nSmallFiles; i++ {
			path := smallFilePath(i + iter*nSmallFiles)
			o.WriteFile(path, payload)
			if sync {
				if err := o.Fsync(path); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.StopTimer()
	reportSim(b, clk, b.N)
}

func BenchmarkFig12_LFSSmallCreate_Async_LinuxBaseline(b *testing.B) { lfsCreateBaseline(b, false) }
func BenchmarkFig12_LFSSmallCreate_PerFileSync_LinuxBaseline(b *testing.B) {
	lfsCreateBaseline(b, true)
}

func lfsReadHiStar(b *testing.B, mode string) {
	rig := newHiStarRig(b, true)
	p := rig.p
	if err := p.Mkdir("/tmp/lfs", label.New(label.L1)); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1024)
	for i := 0; i < nSmallFiles; i++ {
		if err := p.WriteFile(smallFilePath(i), payload, label.New(label.L1)); err != nil {
			b.Fatal(err)
		}
	}
	if err := p.GroupSync(); err != nil {
		b.Fatal(err)
	}
	if mode == "no-prefetch" {
		rig.d.SetReadAhead(0)
	}
	rig.clk.Reset()
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		if mode != "cached" {
			b.StopTimer()
			rig.sys.EvictFileCache()
			b.StartTimer()
		}
		for i := 0; i < nSmallFiles; i++ {
			if _, err := p.ReadFile(smallFilePath(i)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	reportSim(b, rig.clk, b.N)
}

func BenchmarkFig12_LFSSmallRead_Cached_HiStar(b *testing.B)     { lfsReadHiStar(b, "cached") }
func BenchmarkFig12_LFSSmallRead_Uncached_HiStar(b *testing.B)   { lfsReadHiStar(b, "uncached") }
func BenchmarkFig12_LFSSmallRead_NoPrefetch_HiStar(b *testing.B) { lfsReadHiStar(b, "no-prefetch") }

func lfsReadBaseline(b *testing.B, mode string) {
	o, clk := newBaselineRig(b, baseline.VariantLinux)
	payload := make([]byte, 1024)
	for i := 0; i < nSmallFiles; i++ {
		o.WriteFile(smallFilePath(i), payload)
		if err := o.Fsync(smallFilePath(i)); err != nil {
			b.Fatal(err)
		}
	}
	if mode == "no-prefetch" {
		// The baseline shares the disk with its clock; disable look-ahead.
		// (Re-creating the rig would lose the on-disk layout.)
	}
	clk.Reset()
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		for i := 0; i < nSmallFiles; i++ {
			var err error
			if mode == "cached" {
				_, err = o.ReadFile(smallFilePath(i))
			} else {
				_, err = o.ReadFileUncached(smallFilePath(i))
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	reportSim(b, clk, b.N)
}

func BenchmarkFig12_LFSSmallRead_Cached_LinuxBaseline(b *testing.B)   { lfsReadBaseline(b, "cached") }
func BenchmarkFig12_LFSSmallRead_Uncached_LinuxBaseline(b *testing.B) { lfsReadBaseline(b, "uncached") }

func lfsUnlinkHiStar(b *testing.B, mode string) {
	rig := newHiStarRig(b, true)
	p := rig.p
	if err := p.Mkdir("/tmp/lfs", label.New(label.L1)); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1024)
	var simTotal time.Duration
	for iter := 0; iter < b.N; iter++ {
		b.StopTimer()
		for i := 0; i < nSmallFiles; i++ {
			if err := p.WriteFile(smallFilePath(i), payload, label.New(label.L1)); err != nil {
				b.Fatal(err)
			}
		}
		if err := p.GroupSync(); err != nil {
			b.Fatal(err)
		}
		rig.clk.Reset()
		b.StartTimer()
		for i := 0; i < nSmallFiles; i++ {
			if err := p.Unlink(smallFilePath(i)); err != nil {
				b.Fatal(err)
			}
			if mode == "per-file-sync" {
				if err := p.FsyncPath("/tmp/lfs"); err != nil {
					b.Fatal(err)
				}
			}
		}
		if mode == "group-sync" {
			if err := p.GroupSync(); err != nil {
				b.Fatal(err)
			}
		}
		simTotal += rig.clk.Now()
	}
	b.ReportMetric(float64(simTotal.Milliseconds())/float64(b.N), "sim-ms/op")
}

func BenchmarkFig12_LFSSmallUnlink_Async_HiStar(b *testing.B) { lfsUnlinkHiStar(b, "async") }
func BenchmarkFig12_LFSSmallUnlink_PerFileSync_HiStar(b *testing.B) {
	lfsUnlinkHiStar(b, "per-file-sync")
}
func BenchmarkFig12_LFSSmallUnlink_GroupSync_HiStar(b *testing.B) { lfsUnlinkHiStar(b, "group-sync") }

func lfsUnlinkBaseline(b *testing.B, sync bool) {
	o, clk := newBaselineRig(b, baseline.VariantLinux)
	payload := make([]byte, 1024)
	var simTotal time.Duration
	for iter := 0; iter < b.N; iter++ {
		b.StopTimer()
		for i := 0; i < nSmallFiles; i++ {
			o.WriteFile(smallFilePath(i), payload)
			o.Fsync(smallFilePath(i))
		}
		clk.Reset()
		b.StartTimer()
		for i := 0; i < nSmallFiles; i++ {
			if err := o.Unlink(smallFilePath(i), sync); err != nil {
				b.Fatal(err)
			}
		}
		simTotal += clk.Now()
	}
	b.ReportMetric(float64(simTotal.Milliseconds())/float64(b.N), "sim-ms/op")
}

func BenchmarkFig12_LFSSmallUnlink_Async_LinuxBaseline(b *testing.B) { lfsUnlinkBaseline(b, false) }
func BenchmarkFig12_LFSSmallUnlink_PerFileSync_LinuxBaseline(b *testing.B) {
	lfsUnlinkBaseline(b, true)
}

// ---------------------------------------------------------------------------
// Figure 12 rows 14–16: LFS large-file benchmark.  The paper writes and
// reads a 100 MB file; the harness uses 16 MB per iteration and scales in
// EXPERIMENTS.md.  Paper: sequential write 2.14 s (HiStar) vs 3.88 s
// (Linux); sync random write ~90 s both; uncached read ~1.9 s both.
// ---------------------------------------------------------------------------

const largeFileSize = 16 << 20

func BenchmarkFig12_LFSLargeSeqWrite_HiStar(b *testing.B) {
	rig := newHiStarRig(b, true)
	p := rig.p
	chunk := make([]byte, 8192)
	rig.clk.Reset()
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		path := fmt.Sprintf("/tmp/large%d", iter)
		fd, err := p.Create(path, label.New(label.L1))
		if err != nil {
			b.Fatal(err)
		}
		for off := 0; off < largeFileSize; off += len(chunk) {
			if _, err := p.Write(fd, chunk); err != nil {
				b.Fatal(err)
			}
		}
		if err := p.Fsync(fd); err != nil {
			b.Fatal(err)
		}
		p.Close(fd)
	}
	b.StopTimer()
	reportSim(b, rig.clk, b.N)
}

func BenchmarkFig12_LFSLargeSeqWrite_LinuxBaseline(b *testing.B) {
	o, clk := newBaselineRig(b, baseline.VariantLinux)
	buf := make([]byte, largeFileSize)
	clk.Reset()
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		path := fmt.Sprintf("/large%d", iter)
		o.WriteFile(path, buf)
		if err := o.Fsync(path); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportSim(b, clk, b.N)
}

func BenchmarkFig12_LFSLargeSyncRandomWrite_HiStar(b *testing.B) {
	rig := newHiStarRig(b, true)
	p := rig.p
	fd, err := p.Create("/tmp/large-rand", label.New(label.L1))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := p.Pwrite(fd, make([]byte, largeFileSize), 0); err != nil {
		b.Fatal(err)
	}
	if err := p.Fsync(fd); err != nil {
		b.Fatal(err)
	}
	chunk := make([]byte, 8192)
	const nRandWrites = 128 // the paper does 100 MB worth; scaled here
	rig.clk.Reset()
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		for i := 0; i < nRandWrites; i++ {
			off := int64(((i * 7919) % (largeFileSize / 8192)) * 8192)
			if _, err := p.Pwrite(fd, chunk, off); err != nil {
				b.Fatal(err)
			}
			if err := p.Fsync(fd); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	reportSim(b, rig.clk, b.N)
}

func BenchmarkFig12_LFSLargeUncachedRead_HiStar(b *testing.B) {
	rig := newHiStarRig(b, true)
	p := rig.p
	if err := p.WriteFile("/tmp/large-read", make([]byte, largeFileSize), label.New(label.L1)); err != nil {
		b.Fatal(err)
	}
	if err := p.GroupSync(); err != nil {
		b.Fatal(err)
	}
	rig.clk.Reset()
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		b.StopTimer()
		rig.sys.EvictFileCache()
		b.StartTimer()
		// HiStar pages in the whole segment on first access (Section 7.1).
		if _, err := p.ReadFile("/tmp/large-read"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportSim(b, rig.clk, b.N)
}

// ---------------------------------------------------------------------------
// Figure 13: application-level benchmarks.
// ---------------------------------------------------------------------------

// BenchmarkFig13_Build_HiStar models the "building the HiStar kernel" row: a
// compile-like workload of process spawns plus small file reads and writes.
// Paper: HiStar 6.2 s, Linux 4.7 s, OpenBSD 6.0 s.
func BenchmarkFig13_Build_HiStar(b *testing.B) {
	rig := newHiStarRig(b, false)
	sys, p := rig.sys, rig.p
	sys.RegisterProgram("/bin/cc", func(proc *unixlib.Process, args []string) int {
		// "Compile" one unit: read the source, burn some CPU, write the object.
		src, err := proc.ReadFile(args[0])
		if err != nil {
			return 1
		}
		sum := 0
		for i := 0; i < 20000; i++ {
			sum += i ^ len(src)
		}
		if err := proc.WriteFile(args[0]+".o", []byte(fmt.Sprint(sum)), label.New(label.L1)); err != nil {
			return 1
		}
		return 0
	})
	if err := p.Mkdir("/tmp/src", label.New(label.L1)); err != nil {
		b.Fatal(err)
	}
	const nUnits = 40
	for i := 0; i < nUnits; i++ {
		if err := p.WriteFile(fmt.Sprintf("/tmp/src/u%d.c", i), make([]byte, 2048), label.New(label.L1)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		for i := 0; i < nUnits; i++ {
			child, err := p.Spawn("/bin/cc", []string{fmt.Sprintf("/tmp/src/u%d.c", i)})
			if err != nil {
				b.Fatal(err)
			}
			if st, err := p.Wait(child); err != nil || st != 0 {
				b.Fatalf("cc failed: %d %v", st, err)
			}
			_ = p.Unlink(fmt.Sprintf("/tmp/src/u%d.c.o", i))
		}
	}
}

// BenchmarkFig13_Build_Baseline is the same workload on the baseline model.
func BenchmarkFig13_Build_Baseline(b *testing.B) {
	o, _ := newBaselineRig(b, baseline.VariantLinux)
	const nUnits = 40
	for i := 0; i < nUnits; i++ {
		o.WriteFile(fmt.Sprintf("/src/u%d.c", i), make([]byte, 2048))
	}
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		for i := 0; i < nUnits; i++ {
			o.ForkExec()
			src, _ := o.ReadFile(fmt.Sprintf("/src/u%d.c", i))
			sum := 0
			for j := 0; j < 20000; j++ {
				sum += j ^ len(src)
			}
			o.WriteFile(fmt.Sprintf("/src/u%d.o", i), []byte(fmt.Sprint(sum)))
		}
	}
}

// BenchmarkFig13_Wget100MB_HiStar downloads a 100 MB file through netd over
// the modelled 100 Mbps Ethernet.  Paper: 9.1 s on HiStar, 9.0 s on the
// others — all three saturate the link, so the interesting output is the
// simulated transfer time.
func BenchmarkFig13_Wget100MB_HiStar(b *testing.B) {
	rig := newHiStarRig(b, false)
	clk := &vclock.Clock{}
	link := netsim.NewLink(netsim.PaperEthernet(), clk)
	d, err := netd.New(rig.sys, netd.Options{Link: link})
	if err != nil {
		b.Fatal(err)
	}
	const fileSize = 100 << 20
	payload := make([]byte, fileSize)
	d.RegisterRemote("mirror:80", func(req []byte) []byte { return payload })
	client := rig.p
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		clk.Reset()
		sock, err := netd.Dial(d, client, "mirror:80")
		if err != nil {
			b.Fatal(err)
		}
		if err := sock.AttachFastPath(); err != nil {
			b.Fatal(err)
		}
		if err := sock.Send([]byte("GET /100mb")); err != nil {
			b.Fatal(err)
		}
		got := 0
		for got < fileSize {
			chunk, err := sock.RecvFast()
			if err != nil {
				b.Fatal(err)
			}
			if chunk == nil {
				break
			}
			got += len(chunk)
		}
		sock.Close()
		if got != fileSize {
			b.Fatalf("received %d of %d bytes", got, fileSize)
		}
		b.ReportMetric(float64(clk.Now().Milliseconds()), "sim-ms/op")
	}
}

// BenchmarkFig13_VirusScan benchmarks scanning a 100 MB file of random-ish
// binary data, with and without the wrap isolation wrapper.  Paper: 18.7 s
// both with and without the wrapper on HiStar (the wrapper is free), 18.7 s
// on Linux, 21.2 s on OpenBSD.
func virusScanBench(b *testing.B, withWrap bool) {
	rig := newHiStarRig(b, false)
	sys, user := rig.sys, rig.p
	if err := sys.RegisterProgram(clamav.ScannerProgram, clamav.Scanner); err != nil {
		b.Fatal(err)
	}
	if err := clamav.InstallDatabase(user, clamav.DefaultDatabase()); err != nil {
		b.Fatal(err)
	}
	const scanSize = 8 << 20 // scaled from the paper's 100 MB
	data := make([]byte, scanSize)
	for i := range data {
		data[i] = byte(i*2654435761 + i>>8)
	}
	if err := user.WriteFile("/home/bench/target.bin", data, label.Label{}); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(scanSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if withWrap {
			res, err := clamav.Wrap(user, []string{"/home/bench/target.bin"}, clamav.WrapOptions{Timeout: time.Minute})
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Infected) != 0 {
				b.Fatal("unexpected detection")
			}
		} else {
			db := clamav.LoadDatabase(user)
			contents, err := user.ReadFile("/home/bench/target.bin")
			if err != nil {
				b.Fatal(err)
			}
			if r := clamav.ScanBytes(db, "/home/bench/target.bin", contents); r.Infected {
				b.Fatal("unexpected detection")
			}
		}
	}
}

func BenchmarkFig13_VirusScan_NoWrap_HiStar(b *testing.B)   { virusScanBench(b, false) }
func BenchmarkFig13_VirusScan_WithWrap_HiStar(b *testing.B) { virusScanBench(b, true) }

// ---------------------------------------------------------------------------
// Kernel scaling: parallel syscall throughput over the sharded object table.
// The kernel runs syscalls with no global lock — the object table is sharded
// and objects carry their own RW locks — so a mixed read-heavy workload
// issued from 8 concurrent threads should scale with GOMAXPROCS instead of
// flatlining.  The _SingleShard variant forces the whole table through one
// shard lock (the pre-sharding shape) for comparison.
// ---------------------------------------------------------------------------

func benchSyscallParallel(b *testing.B, shards int) {
	k := kernel.New(kernel.Config{Seed: 7, ObjectTableShards: shards})
	boot, err := k.BootThread(label.New(label.L1), label.New(label.L2), "bench boot")
	if err != nil {
		b.Fatal(err)
	}
	root := k.RootContainer()
	shared, err := boot.ContainerCreate(root, label.New(label.L1), "shared", 0, 256<<20)
	if err != nil {
		b.Fatal(err)
	}
	hot, err := boot.SegmentCreate(shared, label.New(label.L1), "hot", 256)
	if err != nil {
		b.Fatal(err)
	}
	hotCE := kernel.CEnt{Container: shared, Object: hot}
	// Exactly 8 worker goroutines regardless of GOMAXPROCS, sharing b.N ops
	// through one counter, so the sharded-vs-single-shard ratio is measured
	// at the same concurrency level on every host.
	const nWorkers = 8
	var (
		ops sync.WaitGroup
		n   atomic.Int64
	)
	b.ResetTimer()
	for w := 0; w < nWorkers; w++ {
		ops.Add(1)
		go func(w int) {
			defer ops.Done()
			tid, err := boot.ThreadCreate(root, kernel.ThreadSpec{
				Label:     label.New(label.L1),
				Clearance: label.New(label.L2),
				Descrip:   fmt.Sprintf("bench worker %d", w),
			})
			if err != nil {
				b.Error(err)
				return
			}
			tc, err := k.ThreadCall(tid)
			if err != nil {
				b.Error(err)
				return
			}
			priv, err := tc.ContainerCreate(root, label.New(label.L1), "priv", 0, 64<<20)
			if err != nil {
				b.Error(err)
				return
			}
			own, err := tc.SegmentCreate(priv, label.New(label.L1), "own", 256)
			if err != nil {
				b.Error(err)
				return
			}
			ownCE := kernel.CEnt{Container: priv, Object: own}
			for i := n.Add(1); i <= int64(b.N); i = n.Add(1) {
				// Read-heavy mix: 7 read syscalls, 2 writes, 1 create/unref
				// pair per 10 iterations.
				var err error
				switch i % 10 {
				case 0, 1, 2:
					_, err = tc.SegmentRead(hotCE, 0, 64)
				case 3, 4:
					_, err = tc.SegmentRead(ownCE, 0, 64)
				case 5:
					_, err = tc.SegmentLen(hotCE)
				case 6:
					_, err = tc.ObjectStat(hotCE)
				case 7:
					err = tc.SegmentWrite(ownCE, 0, []byte("scratchdata"))
				case 8:
					_, err = tc.SegmentCompareSwap(ownCE, 8, 0, 0)
				case 9:
					var seg kernel.ID
					seg, err = tc.SegmentCreate(priv, label.New(label.L1), "tmp", 32)
					if err == nil {
						err = tc.Unref(priv, seg)
					}
				}
				if err != nil {
					b.Error(err)
					return
				}
			}
		}(w)
	}
	ops.Wait()
	b.StopTimer()
	l1 := k.LabelL1Stats()
	if l1.Hits+l1.Misses > 0 {
		b.ReportMetric(100*float64(l1.Hits)/float64(l1.Hits+l1.Misses), "L1-hit-%")
	}
}

func BenchmarkSyscallParallel(b *testing.B)             { benchSyscallParallel(b, 0) }
func BenchmarkSyscallParallel_SingleShard(b *testing.B) { benchSyscallParallel(b, 1) }

// BenchmarkSyscallSerial is the same mixed workload from a single thread,
// for the per-op baseline.
func BenchmarkSyscallSerial(b *testing.B) {
	k := kernel.New(kernel.Config{Seed: 7})
	boot, err := k.BootThread(label.New(label.L1), label.New(label.L2), "bench boot")
	if err != nil {
		b.Fatal(err)
	}
	root := k.RootContainer()
	seg, err := boot.SegmentCreate(root, label.New(label.L1), "hot", 256)
	if err != nil {
		b.Fatal(err)
	}
	ce := kernel.CEnt{Container: root, Object: seg}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		switch i % 10 {
		case 7:
			if err := boot.SegmentWrite(ce, 0, []byte("scratchdata")); err != nil {
				b.Fatal(err)
			}
		case 9:
			s2, err := boot.SegmentCreate(root, label.New(label.L1), "tmp", 32)
			if err != nil {
				b.Fatal(err)
			}
			if err := boot.Unref(root, s2); err != nil {
				b.Fatal(err)
			}
		default:
			if _, err := boot.SegmentRead(ce, 0, 64); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Syscall ring: batched submission vs. the per-call loop.  Both variants run
// the same ring-expressible read-heavy mix from 8 worker threads and claim
// work in 16-op blocks; the Ring variant submits each block as one ring batch
// (one thread snapshot per Wait, one lock round-trip per coalesced
// same-object run), the Serial variant issues the identical block one
// syscall at a time.  The ratio isolates the batching win.
// ---------------------------------------------------------------------------

const ringBenchBatch = 16

func benchSyscallRing(b *testing.B, useRing bool) {
	k := kernel.New(kernel.Config{Seed: 7})
	boot, err := k.BootThread(label.New(label.L1), label.New(label.L2), "bench boot")
	if err != nil {
		b.Fatal(err)
	}
	root := k.RootContainer()
	shared, err := boot.ContainerCreate(root, label.New(label.L1), "shared", 0, 256<<20)
	if err != nil {
		b.Fatal(err)
	}
	hot, err := boot.SegmentCreate(shared, label.New(label.L1), "hot", 256)
	if err != nil {
		b.Fatal(err)
	}
	hotCE := kernel.CEnt{Container: shared, Object: hot}
	const nWorkers = 8
	var (
		ops sync.WaitGroup
		n   atomic.Int64
	)
	b.ResetTimer()
	for w := 0; w < nWorkers; w++ {
		ops.Add(1)
		go func(w int) {
			defer ops.Done()
			tid, err := boot.ThreadCreate(root, kernel.ThreadSpec{
				Label:     label.New(label.L1),
				Clearance: label.New(label.L2),
				Descrip:   fmt.Sprintf("ring bench worker %d", w),
			})
			if err != nil {
				b.Error(err)
				return
			}
			tc, err := k.ThreadCall(tid)
			if err != nil {
				b.Error(err)
				return
			}
			priv, err := tc.ContainerCreate(root, label.New(label.L1), "priv", 0, 64<<20)
			if err != nil {
				b.Error(err)
				return
			}
			own, err := tc.SegmentCreate(priv, label.New(label.L1), "own", 256)
			if err != nil {
				b.Error(err)
				return
			}
			ownCE := kernel.CEnt{Container: priv, Object: own}
			r := tc.NewRing()
			for {
				start := n.Add(ringBenchBatch) - ringBenchBatch
				if start >= int64(b.N) {
					return
				}
				cnt := int64(ringBenchBatch)
				if start+cnt > int64(b.N) {
					cnt = int64(b.N) - start
				}
				if useRing {
					for j := int64(0); j < cnt; j++ {
						r.Submit(ringBenchEntry((start+j)%10, hotCE, ownCE))
					}
					comps, err := r.Wait(int(cnt))
					if err != nil {
						b.Error(err)
						return
					}
					for i := range comps {
						if comps[i].Err != nil {
							b.Error(comps[i].Err)
							return
						}
					}
					continue
				}
				for j := int64(0); j < cnt; j++ {
					var err error
					switch (start + j) % 10 {
					case 0, 1, 2:
						_, err = tc.SegmentRead(hotCE, 0, 64)
					case 3, 4, 8:
						_, err = tc.SegmentRead(ownCE, 0, 64)
					case 5:
						_, err = tc.SegmentLen(hotCE)
					case 6:
						_, err = tc.ObjectStat(hotCE)
					case 7:
						err = tc.SegmentWrite(ownCE, 0, []byte("scratchdata"))
					case 9:
						_, err = tc.SegmentLen(ownCE)
					}
					if err != nil {
						b.Error(err)
						return
					}
				}
			}
		}(w)
	}
	ops.Wait()
	b.StopTimer()
	if useRing {
		rs := k.RingStats()
		if rs.Entries > 0 {
			b.ReportMetric(float64(rs.Entries)/float64(rs.Waits), "entries/wait")
			b.ReportMetric(100*float64(rs.Coalesced)/float64(rs.Entries), "coalesced-%")
		}
	}
}

// ringBenchEntry is the ring form of the mixed workload above: the same op
// for the same index, expressed as a submission entry.
func ringBenchEntry(m int64, hotCE, ownCE kernel.CEnt) kernel.RingEntry {
	switch m {
	case 0, 1, 2:
		return kernel.RingEntry{Op: kernel.OpSegmentRead, Seg: hotCE, Off: 0, Len: 64}
	case 3, 4, 8:
		return kernel.RingEntry{Op: kernel.OpSegmentRead, Seg: ownCE, Off: 0, Len: 64}
	case 5:
		return kernel.RingEntry{Op: kernel.OpSegmentLen, Seg: hotCE}
	case 6:
		return kernel.RingEntry{Op: kernel.OpObjectStat, Seg: hotCE}
	case 7:
		return kernel.RingEntry{Op: kernel.OpSegmentWrite, Seg: ownCE, Off: 0, Data: []byte("scratchdata")}
	default: // 9
		return kernel.RingEntry{Op: kernel.OpSegmentLen, Seg: ownCE}
	}
}

// BenchmarkSyscallRing batches the mix through per-thread rings;
// BenchmarkSyscallRingSerial is the identical workload as a per-call loop.
func BenchmarkSyscallRing(b *testing.B)       { benchSyscallRing(b, true) }
func BenchmarkSyscallRingSerial(b *testing.B) { benchSyscallRing(b, false) }

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md Section 5).
// ---------------------------------------------------------------------------

// BenchmarkAblation_LabelCache measures the immutable-label comparison cache
// (Section 4's kernel optimization) by hammering a label-check-heavy path
// (segment reads) with the cache on and off.
func ablationLabelCache(b *testing.B, disable bool) {
	sys, err := unixlib.Boot(unixlib.BootOptions{KernelConfig: kernel.Config{Seed: 5, DisableLabelCache: disable}})
	if err != nil {
		b.Fatal(err)
	}
	p, err := sys.NewInitProcess("bench")
	if err != nil {
		b.Fatal(err)
	}
	if err := p.WriteFile("/tmp/x", []byte("payload"), label.Label{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.ReadFile("/tmp/x"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_LabelCache_On(b *testing.B)  { ablationLabelCache(b, false) }
func BenchmarkAblation_LabelCache_Off(b *testing.B) { ablationLabelCache(b, true) }

// BenchmarkAblation_NetdFastpath compares the gate-call receive path against
// the shared-memory/futex fast path (the Section 5.7 optimization).
func ablationNetd(b *testing.B, fast bool) {
	rig := newHiStarRig(b, false)
	d, err := netd.New(rig.sys, netd.Options{})
	if err != nil {
		b.Fatal(err)
	}
	const respSize = 1 << 20
	payload := make([]byte, respSize)
	d.RegisterRemote("srv:80", func([]byte) []byte { return payload })
	client := rig.p
	b.SetBytes(respSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sock, err := netd.Dial(d, client, "srv:80")
		if err != nil {
			b.Fatal(err)
		}
		if fast {
			if err := sock.AttachFastPath(); err != nil {
				b.Fatal(err)
			}
		}
		if err := sock.Send([]byte("go")); err != nil {
			b.Fatal(err)
		}
		got := 0
		for got < respSize {
			var chunk []byte
			if fast {
				chunk, err = sock.RecvFast()
			} else {
				chunk, err = sock.Recv(64 * 1024)
			}
			if err != nil {
				b.Fatal(err)
			}
			if chunk == nil {
				break
			}
			got += len(chunk)
		}
		sock.Close()
	}
}

func BenchmarkAblation_NetdFastpath_GateCalls(b *testing.B)    { ablationNetd(b, false) }
func BenchmarkAblation_NetdFastpath_SharedMemory(b *testing.B) { ablationNetd(b, true) }
